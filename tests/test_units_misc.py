"""Focused unit tests for small pieces not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    MutualExclusionViolation,
    NotConnectedError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownHostError,
)
from repro.groups.base import DeliveryEnvelope, GroupStats
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.messages import Message
from repro.proxy.policy import LocationRegister

from conftest import make_sim


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            SimulationError,
            UnknownHostError,
            NotConnectedError,
            MutualExclusionViolation,
            ProtocolError,
        ):
            assert issubclass(exc, ReproError)

    def test_simulation_errors_are_distinct_from_config_errors(self):
        assert not issubclass(SimulationError, ConfigurationError)
        assert issubclass(UnknownHostError, SimulationError)


class TestLatencyModels:
    def test_constant_latency(self):
        import random
        model = ConstantLatency(2.5)
        assert model(random.Random(1)) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self):
        import random
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(7)
        for _ in range(100):
            assert 1.0 <= model(rng) <= 3.0

    def test_uniform_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(3.0, 1.0)

    def test_reprs(self):
        assert "2.5" in repr(ConstantLatency(2.5))
        assert "1.0" in repr(UniformLatency(1.0, 2.0))


class TestMessages:
    def test_unique_ids(self):
        a = Message(kind="k", src="a", dst="b")
        b = Message(kind="k", src="a", dst="b")
        assert a.msg_id != b.msg_id

    def test_defaults(self):
        message = Message(kind="k", src="a", dst="b")
        assert message.payload is None
        assert message.scope == "default"
        assert message.wireless_seq is None


class TestLocationRegister:
    def test_update_and_get(self):
        register = LocationRegister()
        register.update("mh-0", "mss-1", session=1)
        assert register["mh-0"] == "mss-1"
        assert register.get("mh-0") == "mss-1"
        assert "mh-0" in register

    def test_stale_update_ignored(self):
        register = LocationRegister()
        register.update("mh-0", "mss-2", session=5)
        assert not register.update("mh-0", "mss-1", session=4)
        assert register["mh-0"] == "mss-2"

    def test_equal_session_applies(self):
        # A re-join at the same session (e.g. a local correction) wins.
        register = LocationRegister()
        register.update("mh-0", "mss-1", session=3)
        assert register.update("mh-0", "mss-2", session=3)
        assert register["mh-0"] == "mss-2"

    def test_missing_entry(self):
        register = LocationRegister()
        assert register.get("nope") is None
        assert register.get("nope", "fallback") == "fallback"
        assert "nope" not in register
        with pytest.raises(KeyError):
            register["nope"]


class TestGroupStats:
    def test_ratio_with_no_messages(self):
        stats = GroupStats()
        assert stats.mobility_to_message_ratio == 0.0
        stats.moves = 5
        assert stats.mobility_to_message_ratio == float("inf")

    def test_ratio(self):
        stats = GroupStats(moves=6, messages=3)
        assert stats.mobility_to_message_ratio == 2.0

    def test_significant_fraction(self):
        stats = GroupStats(moves=10, significant_moves=4)
        assert stats.significant_fraction == 0.4
        assert GroupStats().significant_fraction == 0.0


class TestGroupAccounting:
    def build(self):
        from repro.groups import PureSearchGroup
        sim = make_sim(n_mss=4, n_mh=3)
        return sim, PureSearchGroup(sim.network, sim.mh_ids)

    def test_outcome_recorded_once(self):
        sim, group = self.build()
        assert group._record_delivered(1, "mh-1")
        assert not group._record_delivered(1, "mh-1")
        assert not group._record_missed(1, "mh-1")
        assert group.stats.deliveries == 1
        assert group.stats.missed == 0

    def test_provisional_miss_upgrades_to_delivery(self):
        sim, group = self.build()
        group._record_missed_provisionally(1, "mh-1")
        assert group.stats.missed == 1
        assert group._record_delivered(1, "mh-1")
        assert group.stats.missed == 0
        assert group.stats.deliveries == 1
        # A second delivery report is ignored.
        assert not group._record_delivered(1, "mh-1")
        assert group.stats.deliveries == 1

    def test_provisional_then_definitive_miss_stays_single(self):
        sim, group = self.build()
        group._record_missed_provisionally(1, "mh-1")
        assert not group._record_missed(1, "mh-1")
        assert group.stats.missed == 1

    def test_provisional_is_idempotent(self):
        sim, group = self.build()
        group._record_missed_provisionally(1, "mh-1")
        group._record_missed_provisionally(1, "mh-1")
        assert group.stats.missed == 1

    def test_envelope_is_frozen(self):
        envelope = DeliveryEnvelope(1, "x")
        with pytest.raises(Exception):
            envelope.msg_id = 2


class TestNetworkConfigValidation:
    def test_negative_transit_rejected(self):
        from repro.net import NetworkConfig
        with pytest.raises(ConfigurationError):
            NetworkConfig(transit_time=-1.0)

    def test_zero_retry_rejected(self):
        from repro.net import NetworkConfig
        with pytest.raises(ConfigurationError):
            NetworkConfig(search_retry_delay=0.0)


class TestNetworkRegistration:
    def test_duplicate_mss_rejected(self):
        sim = make_sim(n_mss=2, n_mh=0)
        from repro.hosts import MobileSupportStation
        with pytest.raises(SimulationError):
            sim.network.register_mss(
                MobileSupportStation("mss-0", sim.network)
            )

    def test_mh_id_colliding_with_mss_rejected(self):
        sim = make_sim(n_mss=2, n_mh=0)
        from repro.hosts import MobileHost
        with pytest.raises(SimulationError):
            sim.network.register_mh(MobileHost("mss-0", sim.network))

    def test_unknown_lookups_raise(self):
        sim = make_sim(n_mss=2, n_mh=1)
        with pytest.raises(UnknownHostError):
            sim.network.mss("nope")
        with pytest.raises(UnknownHostError):
            sim.network.mobile_host("nope")
