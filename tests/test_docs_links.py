"""Every relative link in README.md and docs/ must resolve (the same
check CI runs via ``tools/check_links.py``)."""

from __future__ import annotations

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools", "check_links.py",
)
_spec = importlib.util.spec_from_file_location("check_links", _TOOL)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


def test_no_broken_links():
    assert check_links.main([]) == 0


def test_github_slugs():
    assert check_links.github_slug("Trace events") == "trace-events"
    assert check_links.github_slug("## `repro trace`") == "-repro-trace"
    assert check_links.github_slug("A, B & C!") == "a-b--c"


def test_anchor_detection_matches_docs():
    metrics = os.path.join(check_links.REPO_ROOT, "docs", "metrics.md")
    anchors = check_links.anchors_of(metrics)
    assert "trace-events" in anchors
    assert "fault-counters" in anchors
