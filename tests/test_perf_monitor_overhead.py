"""Perf guarantees of the monitor layer.

Two promises are priced here:

1. **Zero cost when off.**  ``Simulation(monitors=None)`` takes the
   same fast path PR 4 optimized -- the monitors-off smoke scenarios
   must stay within the CI tolerance of the checked-in ``BENCH_4.json``
   record (the pre-monitor baseline), using the same
   calibration-normalized comparison the perf gate uses.
2. **Bounded, observation-only cost when on.**  ``smoke_monitors``
   runs the exact ``smoke_mutex`` workload under the full default
   monitor set: the event count must be identical (monitors schedule
   nothing) and the slowdown must stay within an order of magnitude
   (the dispatch table, not a per-event linear scan).

The wall-clock assertions use generous tolerances: this is a
functional guardrail against accidental O(n) scans on the hot path,
not a microbenchmark -- ``tools/perf_harness.py`` and the CI
``perf-smoke`` job do the precise tracking.
"""

from __future__ import annotations

import os

from repro.perf import (
    SCENARIOS,
    calibrate,
    check_regressions,
    compare,
    load_bench,
    run_scenario,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: single-repeat in-process runs are noisy; the CI gate (3 repeats in a
#: quiet process) keeps the tight 0.30 tolerance.
LOCAL_TOLERANCE = 0.60


def test_smoke_monitors_is_registered_for_the_ci_gate():
    scenario = SCENARIOS["smoke_monitors"]
    assert scenario.smoke
    assert "monitor" in scenario.tags


def test_monitored_run_processes_identical_events():
    baseline = SCENARIOS["smoke_mutex"].run()
    monitored = SCENARIOS["smoke_monitors"].run()
    assert monitored == baseline


def test_monitoring_overhead_is_bounded():
    off = run_scenario("smoke_mutex", repeats=1)
    on = run_scenario("smoke_monitors", repeats=1)
    assert on.events == off.events
    slowdown = off.events_per_sec / on.events_per_sec
    assert slowdown < 10.0, (
        f"monitoring made the smoke workload {slowdown:.1f}x slower; "
        "the dispatch path has regressed from table lookup to scan"
    )


def test_monitors_off_stays_within_tolerance_of_bench4():
    baseline = load_bench(os.path.join(REPO_ROOT, "BENCH_4.json"))
    current = {
        "schema": 1,
        "calibration_ops_per_sec": calibrate(),
        "scenarios": {
            name: {
                "events_per_sec": result.events_per_sec,
                "events": result.events,
                "wall_time_s": result.wall_time_s,
                "peak_rss_kb": result.peak_rss_kb,
                "repeats": result.repeats,
            }
            for name, result in (
                # BENCH_4 predates the smoke_scale -> smoke_mutex
                # rename; the workload is unchanged, so compare
                # today's smoke_mutex under the record's old name.
                (bench4_name, run_scenario(name, repeats=1))
                for bench4_name, name in (
                    ("smoke_scale", "smoke_mutex"),
                    ("smoke_search", "smoke_search"),
                )
            )
        },
    }
    deltas = [d for d in compare(current, baseline)
              if d.name in current["scenarios"]]
    assert deltas, "no overlapping smoke scenarios with BENCH_4"
    failures = check_regressions(deltas, max_regression=LOCAL_TOLERANCE)
    assert not failures, "\n".join(failures)
