"""Integration tests for the mobility protocol of Section 2."""

from __future__ import annotations

import pytest

from repro import Category, HostState, NotConnectedError
from repro.hosts import HandoffParticipant

from conftest import make_sim


class TestMoves:
    def test_move_updates_cell_membership(self):
        sim = make_sim()
        assert sim.mss(0).is_local("mh-0")
        sim.mh(0).move_to("mss-2")
        sim.drain()
        assert not sim.mss(0).is_local("mh-0")
        assert sim.mss(2).is_local("mh-0")
        assert sim.mh(0).current_mss_id == "mss-2"
        assert sim.mh(0).moves_completed == 1

    def test_move_passes_through_transit_state(self):
        sim = make_sim()
        sim.mh(0).move_to("mss-1")
        assert sim.mh(0).state is HostState.IN_TRANSIT
        assert sim.mh(0).current_mss_id is None
        sim.drain()
        assert sim.mh(0).state is HostState.CONNECTED

    def test_move_while_in_transit_rejected(self):
        sim = make_sim()
        sim.mh(0).move_to("mss-1")
        with pytest.raises(NotConnectedError):
            sim.mh(0).move_to("mss-2")
        sim.drain()

    def test_move_messages_are_mobility_scoped(self):
        sim = make_sim()
        sim.mh(0).move_to("mss-1")
        sim.drain()
        # leave + join are wireless messages under the mobility scope.
        assert sim.metrics.total(Category.WIRELESS, "mobility") == 2

    def test_session_increments_per_attachment(self):
        sim = make_sim()
        assert sim.mh(0).session == 1
        sim.mh(0).move_to("mss-1")
        sim.drain()
        assert sim.mh(0).session == 2

    def test_attach_initial_only_once(self):
        sim = make_sim()
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            sim.mh(0).attach_initial("mss-1")


class TestHandoff:
    def test_handoff_transfers_participant_state(self):
        sim = make_sim()

        class Tracker(HandoffParticipant):
            name = "tracker"

            def __init__(self):
                self.store = {}

            def handoff_state(self, mh_id):
                return self.store.pop(mh_id, None)

            def install_handoff_state(self, mh_id, state):
                self.store[mh_id] = state

        trackers = {}
        for i in range(sim.n_mss):
            tracker = Tracker()
            trackers[sim.mss_id(i)] = tracker
            sim.mss(i).add_handoff_participant(tracker)

        trackers["mss-0"].store["mh-0"] = {"tokens": 3}
        sim.mh(0).move_to("mss-2")
        sim.drain()
        assert trackers["mss-2"].store.get("mh-0") == {"tokens": 3}
        assert "mh-0" not in trackers["mss-0"].store

    def test_join_listener_sees_previous_mss(self):
        sim = make_sim()
        seen = []
        sim.mss(2).add_join_listener(
            lambda mh_id, prev: seen.append((mh_id, prev))
        )
        sim.mh(0).move_to("mss-2")
        sim.drain()
        assert seen == [("mh-0", "mss-0")]

    def test_leave_listener_fires(self):
        sim = make_sim()
        seen = []
        sim.mss(0).add_leave_listener(seen.append)
        sim.mh(0).move_to("mss-1")
        sim.drain()
        assert seen == ["mh-0"]


class TestDisconnection:
    def test_disconnect_sets_flag_at_local_mss(self):
        sim = make_sim()
        sim.mh(0).disconnect()
        sim.drain()
        assert sim.mh(0).state is HostState.DISCONNECTED
        assert not sim.mss(0).is_local("mh-0")
        assert "mh-0" in sim.mss(0).disconnected_mhs

    def test_reconnect_with_prev_clears_flag(self):
        sim = make_sim()
        sim.mh(0).disconnect()
        sim.drain()
        sim.mh(0).reconnect("mss-3")
        sim.drain()
        assert sim.mh(0).current_mss_id == "mss-3"
        assert sim.mss(3).is_local("mh-0")
        assert "mh-0" not in sim.mss(0).disconnected_mhs

    def test_reconnect_same_cell_clears_flag_locally(self):
        sim = make_sim()
        sim.mh(0).disconnect()
        sim.drain()
        before = sim.metrics.total(Category.FIXED, "mobility")
        sim.mh(0).reconnect("mss-0")
        sim.drain()
        assert "mh-0" not in sim.mss(0).disconnected_mhs
        # No fixed traffic needed: the flag was local.
        assert sim.metrics.total(Category.FIXED, "mobility") == before

    def test_reconnect_without_prev_queries_all_mss(self):
        sim = make_sim()
        sim.mh(0).disconnect()
        sim.drain()
        before = sim.metrics.total(Category.FIXED, "mobility")
        sim.mh(0).reconnect("mss-2", supply_prev=False)
        sim.drain()
        delta = sim.metrics.total(Category.FIXED, "mobility") - before
        # M-1 queries + 1 reply + handoff request/reply.
        assert delta == (sim.n_mss - 1) + 1 + 2
        assert "mh-0" not in sim.mss(0).disconnected_mhs

    def test_disconnect_requires_connection(self):
        sim = make_sim()
        sim.mh(0).disconnect()
        sim.drain()
        with pytest.raises(NotConnectedError):
            sim.mh(0).disconnect()

    def test_reconnect_requires_disconnection(self):
        sim = make_sim()
        with pytest.raises(NotConnectedError):
            sim.mh(0).reconnect("mss-1")


class TestDozeMode:
    def test_delivery_to_dozing_mh_counts_interruption(self):
        sim = make_sim()
        sim.mh(0).register_handler("test.msg", lambda m: None)
        sim.mh(0).doze()
        from repro.net.messages import Message
        sim.network.send_wireless_down(
            "mss-0", "mh-0",
            Message(kind="test.msg", src="mss-0", dst="mh-0",
                    scope="test"),
        )
        sim.drain()
        assert sim.mh(0).doze_interruptions == 1

    def test_awake_mh_not_interrupted(self):
        sim = make_sim()
        sim.mh(0).register_handler("test.msg", lambda m: None)
        from repro.net.messages import Message
        sim.network.send_wireless_down(
            "mss-0", "mh-0",
            Message(kind="test.msg", src="mss-0", dst="mh-0",
                    scope="test"),
        )
        sim.drain()
        assert sim.mh(0).doze_interruptions == 0

    def test_wake_resets_doze(self):
        sim = make_sim()
        sim.mh(0).doze()
        sim.mh(0).wake()
        assert not sim.mh(0).dozing


class TestDispatch:
    def test_unknown_kind_raises(self):
        sim = make_sim()
        from repro.errors import ProtocolError
        from repro.net.messages import Message
        with pytest.raises(ProtocolError):
            sim.mss(0).handle_message(
                Message(kind="nope", src="x", dst="mss-0")
            )

    def test_duplicate_handler_rejected(self):
        sim = make_sim()
        from repro.errors import SimulationError
        sim.mss(0).register_handler("k", lambda m: None)
        with pytest.raises(SimulationError):
            sim.mss(0).register_handler("k", lambda m: None)

    def test_unregister_allows_reregistration(self):
        sim = make_sim()
        sim.mss(0).register_handler("k", lambda m: None)
        sim.mss(0).unregister_handler("k")
        sim.mss(0).register_handler("k", lambda m: None)
