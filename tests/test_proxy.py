"""Tests for the Section 5 proxy framework."""

from __future__ import annotations

import pytest

from repro import Category, CriticalResource
from repro.errors import ConfigurationError
from repro.proxy import (
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxiedMessenger,
    ProxiedMutex,
    ProxyManager,
)

from conftest import make_sim


def fixed_setup(n_mss=4, n_mh=4):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, placement="round_robin")
    policy = FixedProxyPolicy()
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    return sim, policy, manager


def local_setup(n_mss=4, n_mh=4):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, placement="round_robin")
    policy = LocalProxyPolicy()
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    return sim, policy, manager


class TestFixedProxyPolicy:
    def test_proxy_defaults_to_initial_mss(self):
        sim, policy, manager = fixed_setup()
        assert policy.proxy_of("mh-2") == "mss-2"

    def test_proxy_unchanged_by_moves(self):
        sim, policy, manager = fixed_setup()
        sim.mh(2).move_to("mss-0")
        sim.drain()
        assert policy.proxy_of("mh-2") == "mss-2"

    def test_moves_generate_inform_traffic(self):
        sim, policy, manager = fixed_setup()
        sim.mh(1).move_to("mss-3")
        sim.drain()
        assert policy.inform_messages == 1
        assert policy.location_register["mh-1"] == "mss-3"
        assert sim.metrics.total(Category.FIXED, "proxy") == 1

    def test_move_back_to_proxy_cell_needs_no_inform(self):
        sim, policy, manager = fixed_setup()
        sim.mh(1).move_to("mss-3")
        sim.drain()
        sim.mh(1).move_to("mss-1")
        sim.drain()
        assert policy.inform_messages == 1
        assert policy.location_register["mh-1"] == "mss-1"

    def test_unknown_mh_has_no_proxy(self):
        sim, policy, manager = fixed_setup()
        with pytest.raises(ConfigurationError):
            policy.proxy_of("mh-99")


class TestLocalProxyPolicy:
    def test_proxy_is_current_mss(self):
        sim, policy, manager = local_setup()
        assert policy.proxy_of("mh-1") == "mss-1"
        sim.mh(1).move_to("mss-3")
        sim.drain()
        assert policy.proxy_of("mh-1") == "mss-3"

    def test_moves_generate_no_proxy_traffic(self):
        sim, policy, manager = local_setup()
        sim.mh(1).move_to("mss-3")
        sim.drain()
        assert sim.metrics.total(Category.FIXED, "proxy") == 0


class TestProxiedMessenger:
    def test_fixed_policy_delivers_without_search(self):
        sim, policy, manager = fixed_setup()
        messenger = ProxiedMessenger(manager)
        sim.mh(2).move_to("mss-0")  # dst moves away from its proxy
        sim.drain()
        before = sim.metrics.snapshot()
        messenger.send("mh-0", "mh-2", "hello")
        sim.drain()
        delta = sim.metrics.since(before)
        assert messenger.deliveries_of("hello") == ["mh-2"]
        assert delta.total(Category.SEARCH, "proxy") == 0

    def test_local_policy_delivers_with_search(self):
        sim, policy, manager = local_setup()
        messenger = ProxiedMessenger(manager)
        sim.mh(2).move_to("mss-0")
        sim.drain()
        before = sim.metrics.snapshot()
        messenger.send("mh-1", "mh-2", "hello")
        sim.drain()
        delta = sim.metrics.since(before)
        assert messenger.deliveries_of("hello") == ["mh-2"]
        assert delta.total(Category.SEARCH, "proxy") == 1

    def test_same_proxy_shortcut(self):
        sim, policy, manager = fixed_setup()
        messenger = ProxiedMessenger(manager)
        # mh-0 and mh-2 both proxied at mss-0 after explicit assignment.
        sim2 = make_sim(n_mss=4, n_mh=2, placement="single_cell")
        policy2 = FixedProxyPolicy()
        manager2 = ProxyManager(sim2.network, policy2, sim2.mh_ids)
        messenger2 = ProxiedMessenger(manager2)
        before = sim2.metrics.snapshot()
        messenger2.send("mh-0", "mh-1", "near")
        sim2.drain()
        delta = sim2.metrics.since(before)
        assert messenger2.deliveries_of("near") == ["mh-1"]
        # Uplink + downlink only: both wireless, no fixed traffic.
        assert delta.total(Category.FIXED, "proxy") == 0

    def test_sender_away_from_its_proxy_relays_uplink(self):
        sim, policy, manager = fixed_setup()
        messenger = ProxiedMessenger(manager)
        sim.mh(0).move_to("mss-3")
        sim.drain()
        messenger.send("mh-0", "mh-1", "from-afar")
        sim.drain()
        assert messenger.deliveries_of("from-afar") == ["mh-1"]

    def test_fixed_policy_recovers_from_stale_register(self):
        sim, policy, manager = fixed_setup()
        messenger = ProxiedMessenger(manager)
        # Send while the destination's move is still in flight, so the
        # proxy's register points at the old cell.
        sim.mh(2).move_to("mss-0")
        messenger.send("mh-0", "mh-2", "racing")
        sim.drain()
        assert messenger.deliveries_of("racing") == ["mh-2"]

    def test_unmanaged_destination_rejected(self):
        sim, policy, manager = fixed_setup()
        messenger = ProxiedMessenger(manager)
        with pytest.raises(ConfigurationError):
            messenger.send("mh-0", "mh-99", "x")


class TestProxiedMutex:
    def test_mutual_exclusion_with_fixed_proxies(self):
        sim, policy, manager = fixed_setup()
        resource = CriticalResource(sim.scheduler)
        mutex = ProxiedMutex(manager, resource)
        for mh_id in sim.mh_ids:
            mutex.request(mh_id)
        sim.drain()
        assert resource.access_count == 4
        resource.assert_no_overlap()

    def test_grant_reaches_moved_mh_without_search(self):
        sim, policy, manager = fixed_setup()
        resource = CriticalResource(sim.scheduler)
        mutex = ProxiedMutex(manager, resource)
        sim.mh(0).move_to("mss-2")
        sim.drain()
        before = sim.metrics.snapshot()
        mutex.request("mh-0")
        sim.drain()
        delta = sim.metrics.since(before)
        assert resource.access_count == 1
        assert delta.total(Category.SEARCH) == 0

    def test_release_from_new_cell_routed_to_granting_proxy(self):
        sim, policy, manager = fixed_setup()
        resource = CriticalResource(sim.scheduler)
        done = []
        mutex = ProxiedMutex(manager, resource, cs_duration=10.0,
                             on_complete=done.append)
        mutex.request("mh-0")
        # Run until the grant arrives and mh-0 holds the region.
        while resource.holder != "mh-0":
            assert sim.scheduler.step(), "grant never arrived"
        # Move to another cell while inside the region: the done uplink
        # will land at the new local MSS and be forwarded to the
        # granting proxy.
        sim.mh(0).move_to("mss-3")
        sim.drain()
        assert done == ["mh-0"]

    def test_needs_two_proxies(self):
        sim = make_sim(n_mss=3, n_mh=3, placement="single_cell")
        policy = FixedProxyPolicy()
        manager = ProxyManager(sim.network, policy, sim.mh_ids)
        with pytest.raises(ConfigurationError):
            ProxiedMutex(manager, CriticalResource(sim.scheduler))
