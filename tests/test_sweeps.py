"""Tests for the sweep/statistics utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.sweeps import Summary, dominates, series, summarize, sweep
from repro.errors import ConfigurationError


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.mean == 2.0
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.n == 3
    assert summary.stdev == pytest.approx(1.0)


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.stdev == 0.0
    assert summary.stderr == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ConfigurationError):
        summarize([])


def test_stderr_shrinks_with_n():
    wide = summarize([1.0, 3.0])
    narrow = summarize([1.0, 3.0] * 8)
    assert narrow.stderr < wide.stderr


def test_sweep_runs_grid_and_seeds():
    calls = []

    def experiment(parameter, seed):
        calls.append((parameter, seed))
        return parameter * 10 + seed

    result = sweep(experiment, [1, 2], seeds=[0, 1, 2])
    assert len(calls) == 6
    assert result[1].mean == pytest.approx(11.0)
    assert result[2].mean == pytest.approx(21.0)


def test_sweep_requires_seeds():
    with pytest.raises(ConfigurationError):
        sweep(lambda p, s: 0.0, [1], seeds=[])


def test_series_extraction():
    result = sweep(lambda p, s: p + s, [1, 2, 3], seeds=[0, 2])
    xs, means, errors = series(result)
    assert xs == [1, 2, 3]
    assert means == [2.0, 3.0, 4.0]
    assert all(e >= 0 for e in errors)


def test_dominates():
    low = sweep(lambda p, s: p, [1, 2], seeds=[0])
    high = sweep(lambda p, s: p + 5, [1, 2], seeds=[0])
    assert dominates(low, high)
    assert not dominates(high, low)


def test_dominates_requires_same_grid():
    a = sweep(lambda p, s: p, [1], seeds=[0])
    b = sweep(lambda p, s: p, [2], seeds=[0])
    with pytest.raises(ConfigurationError):
        dominates(a, b)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_property_mean_within_bounds(values):
    summary = summarize(values)
    # Floating-point summation can push the mean past the extrema by
    # a few ulps; allow a proportional tolerance.
    tolerance = 1e-9 * max(1.0, abs(summary.minimum),
                           abs(summary.maximum))
    assert summary.minimum - tolerance <= summary.mean
    assert summary.mean <= summary.maximum + tolerance
    assert summary.stdev >= 0.0


@given(st.lists(st.floats(-100, 100), min_size=2, max_size=30),
       st.floats(-50, 50))
def test_property_shift_invariance_of_stdev(values, shift):
    base = summarize(values)
    shifted = summarize([v + shift for v in values])
    assert shifted.stdev == pytest.approx(base.stdev, abs=1e-6)
    assert shifted.mean == pytest.approx(base.mean + shift, abs=1e-6)


# ----------------------------------------------------------------------
# Welford accuracy and parallel sweeps
# ----------------------------------------------------------------------

def test_summarize_large_offset_stays_accurate():
    # A naive one-pass sum-of-squares (E[x^2] - mean^2) catastrophically
    # cancels when the sample shares a large offset; Welford must not.
    offset = 1e9
    values = [offset + 1.0, offset + 2.0, offset + 3.0]
    summary = summarize(values)
    assert summary.mean == pytest.approx(offset + 2.0)
    assert summary.stdev == pytest.approx(1.0)

    n = len(values)
    naive_var = sum(v * v for v in values) / (n - 1) - (
        n / (n - 1)
    ) * (sum(values) / n) ** 2
    # The naive formula is visibly wrong here (negative or off by >10%),
    # which is exactly why summarize uses Welford's update.
    assert naive_var < 0 or abs(naive_var - 1.0) > 0.1


def test_summarize_constant_sample_has_zero_stdev():
    summary = summarize([7.25] * 10)
    assert summary.stdev == 0.0
    assert summary.minimum == summary.maximum == 7.25


def test_summarize_single_pass_consumes_iterators():
    summary = summarize(iter([1.0, 2.0, 3.0]))
    assert summary.mean == 2.0
    assert summary.n == 3


def _grid_experiment(parameter, seed):
    # Module-level so it pickles into worker processes.
    return parameter * 100.0 + seed * 3.0


def test_sweep_parallel_matches_serial_exactly():
    parameters = [1, 2, 3, 4]
    seeds = [0, 1, 2, 3, 4]
    serial = sweep(_grid_experiment, parameters, seeds, workers=1)
    parallel = sweep(_grid_experiment, parameters, seeds, workers=4)
    assert list(serial) == list(parallel)
    for parameter in parameters:
        assert serial[parameter] == parallel[parameter]


def test_sweep_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        sweep(_grid_experiment, [1], seeds=[0], workers=0)
