"""Smoke-test every CLI example in ``docs/cli.md``.

The reference promises its examples are copy-pasteable; this test
keeps that promise by extracting every ``python -m repro ...`` command
from the page's ``bash`` code fences and running it through
:func:`repro.cli.main` in-process.
"""

from __future__ import annotations

import os
import re
import shlex

import pytest

from repro.cli import main

CLI_MD = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "cli.md",
)

_FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def extract_commands():
    with open(CLI_MD, encoding="utf-8") as fh:
        text = fh.read()
    commands = []
    for block in _FENCE_RE.findall(text):
        # Join backslash line continuations, then take each command.
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("python -m repro"):
                commands.append(shlex.split(line)[3:])
    return commands


COMMANDS = extract_commands()


def test_the_page_actually_contains_examples():
    assert len(COMMANDS) >= 9
    subcommands = {argv[0] for argv in COMMANDS}
    assert {"mutex", "groups", "proxy", "multicast", "compare",
            "trace"} <= subcommands


@pytest.mark.parametrize(
    "argv", COMMANDS, ids=[" ".join(argv)[:60] for argv in COMMANDS]
)
def test_documented_example_runs_clean(argv):
    lines = []
    assert main(argv, emit=lines.append) == 0
    assert lines  # every example prints something
