"""Tests for exactly-once multicast delivery (the paper's ref [1])."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Category, NetworkConfig, Simulation, UniformLatency
from repro.errors import ConfigurationError
from repro.mobility import DisconnectionModel, UniformMobility
from repro.multicast import ExactlyOnceMulticast
from repro.sim import PoissonProcess

from conftest import make_sim


def build(n_mss=5, n_mh=4, gc=True, **kwargs):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, **kwargs)
    multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids, gc=gc)
    return sim, multicast


class TestBasics:
    def test_message_reaches_every_member_once(self):
        sim, multicast = build()
        multicast.send("mh-0", "hello")
        sim.drain()
        for member in sim.mh_ids:
            assert multicast.delivered_seqs(member) == [1]

    def test_total_order_across_members(self):
        sim, multicast = build()
        for i in range(5):
            multicast.send(sim.mh_id(i % 4), f"m{i}")
        sim.drain()
        for member in sim.mh_ids:
            assert multicast.delivered_seqs(member) == [1, 2, 3, 4, 5]

    def test_sender_also_receives(self):
        sim, multicast = build()
        multicast.send("mh-2", "self")
        sim.drain()
        assert multicast.delivered_seqs("mh-2") == [1]

    def test_non_member_cannot_send(self):
        sim = make_sim(n_mss=3, n_mh=4)
        multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids[:2])
        with pytest.raises(ConfigurationError):
            multicast.send("mh-3", "x")

    def test_duplicate_members_rejected(self):
        sim = make_sim(n_mss=3, n_mh=2)
        with pytest.raises(ConfigurationError):
            ExactlyOnceMulticast(sim.network, ["mh-0", "mh-0"])


class TestMobility:
    def test_mover_catches_up_at_new_cell(self):
        sim, multicast = build()
        sim.mh(1).move_to("mss-4")
        multicast.send("mh-0", "racing")
        sim.drain()
        assert multicast.delivered_seqs("mh-1") == [1]

    def test_messages_sent_while_in_transit_arrive_after_join(self):
        sim, multicast = build()
        sim.mh(1).move_to("mss-3")
        for i in range(3):
            multicast.send("mh-0", f"burst{i}")
        sim.drain()
        assert multicast.delivered_seqs("mh-1") == [1, 2, 3]

    def test_repeated_moves_never_duplicate(self):
        sim, multicast = build(n_mss=6)
        for i in range(4):
            multicast.send("mh-0", f"m{i}")
            sim.mh(1).move_to(f"mss-{(i + 2) % 6}")
            sim.drain()
        assert multicast.delivered_seqs("mh-1") == [1, 2, 3, 4]


class TestDisconnection:
    def test_disconnected_member_catches_up_on_reconnect(self):
        sim, multicast = build()
        sim.mh(2).disconnect()
        sim.drain()
        for i in range(3):
            multicast.send("mh-0", f"while-away-{i}")
        sim.drain()
        assert multicast.delivered_seqs("mh-2") == []
        sim.mh(2).reconnect("mss-4")
        sim.drain()
        assert multicast.delivered_seqs("mh-2") == [1, 2, 3]

    def test_reconnect_without_prev_still_catches_up(self):
        sim, multicast = build()
        sim.mh(2).disconnect()
        sim.drain()
        multicast.send("mh-0", "x")
        sim.drain()
        sim.mh(2).reconnect("mss-3", supply_prev=False)
        sim.drain()
        assert multicast.delivered_seqs("mh-2") == [1]


class TestGarbageCollection:
    def test_buffers_prune_once_everyone_delivered(self):
        sim, multicast = build()
        for i in range(4):
            multicast.send("mh-0", f"m{i}")
        sim.drain()
        for mss_id in sim.mss_ids:
            assert multicast.buffer_size(mss_id) == 0

    def test_buffers_grow_while_a_member_is_away(self):
        sim, multicast = build()
        sim.mh(3).disconnect()
        sim.drain()
        for i in range(5):
            multicast.send("mh-0", f"m{i}")
        sim.drain()
        # Nothing can be pruned: mh-3 has seen nothing.
        assert all(
            multicast.buffer_size(mss_id) == 5 for mss_id in sim.mss_ids
        )
        sim.mh(3).reconnect("mss-0")
        sim.drain()
        assert all(
            multicast.buffer_size(mss_id) == 0 for mss_id in sim.mss_ids
        )

    def test_gc_disabled_keeps_everything(self):
        sim, multicast = build(gc=False)
        for i in range(3):
            multicast.send("mh-0", f"m{i}")
        sim.drain()
        assert all(
            multicast.buffer_size(mss_id) == 3 for mss_id in sim.mss_ids
        )
        # And no ack traffic was generated.
        assert sim.metrics.total(Category.FIXED, "eom") > 0  # floods only


STRESS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@STRESS
@given(
    seed=st.integers(0, 10_000),
    n_members=st.integers(1, 8),
    move_rate=st.floats(0.0, 0.08),
    disconnect_rate=st.floats(0.0, 0.02),
)
def test_property_exactly_once_in_order_under_churn(
    seed, n_members, move_rate, disconnect_rate
):
    """The headline invariant of [1]: every member receives every
    message exactly once, in sequence order, under arbitrary moves and
    disconnect/reconnect cycles."""
    sim = Simulation(
        n_mss=5,
        n_mh=n_members,
        seed=seed,
        config=NetworkConfig(
            fixed_latency=UniformLatency(0.2, 2.0),
            wireless_latency=UniformLatency(0.1, 0.8),
        ),
        placement="random",
    )
    multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids)
    rng = random.Random(seed + 1)
    sent = [0]

    def send_one():
        sender = rng.choice(sim.mh_ids)
        if sim.network.mobile_host(sender).is_connected:
            sent[0] += 1
            multicast.send(sender, ("m", sent[0]))

    traffic = PoissonProcess(sim.scheduler, 0.05, send_one,
                             rng=random.Random(seed + 2))
    mobility = None
    churn = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 3))
    if disconnect_rate > 0:
        churn = DisconnectionModel(sim.network, sim.mh_ids,
                                   disconnect_rate, downtime=5.0,
                                   rng=random.Random(seed + 4))
    sim.run(until=300.0)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    if churn is not None:
        churn.stop()
    sim.drain()

    total = multicast.messages_sent
    for member in sim.mh_ids:
        seqs = multicast.delivered_seqs(member)
        assert seqs == list(range(1, total + 1)), (
            f"{member} delivered {seqs}, expected 1..{total}"
        )
    # Everyone caught up, so every buffer is empty again.
    for mss_id in sim.mss_ids:
        assert multicast.buffer_size(mss_id) == 0


def test_bounce_back_does_not_fork_the_counter():
    """Regression: a member that bounces A -> B -> A before the first
    handoff request reaches A must not have its counter stolen by the
    stale request (which would fork the state, regress the counter and
    wedge delivery)."""
    sim = make_sim(n_mss=4, n_mh=2, transit_time=0.1,
                   fixed_latency=5.0, wireless_latency=0.05)
    multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids)
    multicast.send("mh-0", "one")
    sim.drain()
    # Bounce: the handoff request for the first move is still crossing
    # the slow fixed network when mh-1 returns to mss-1.
    sim.mh(1).move_to("mss-2")
    sim.run(until=sim.now + 0.3)
    assert sim.mh(1).current_mss_id == "mss-2"
    sim.mh(1).move_to("mss-1")
    sim.run(until=sim.now + 0.3)
    assert sim.mh(1).current_mss_id == "mss-1"
    multicast.send("mh-0", "two")
    sim.drain()
    multicast.send("mh-0", "three")
    sim.drain()
    assert multicast.delivered_seqs("mh-1") == [1, 2, 3]
    # Exactly one authoritative counter, at the member's cell.
    holders = [
        mss_id
        for mss_id, states in multicast.member_states.items()
        if "mh-1" in states
    ]
    assert holders == ["mss-1"]
    assert multicast.member_states["mss-1"]["mh-1"] == 3
