"""Tests for mobility and disconnection models."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.mobility import (
    DisconnectionModel,
    GraphMobility,
    LocalizedMobility,
    TraceMobility,
    UniformMobility,
)

from conftest import make_sim


def test_uniform_mobility_moves_hosts():
    sim = make_sim(n_mss=5, n_mh=10)
    model = UniformMobility(sim.network, sim.mh_ids, move_rate=0.5,
                            rng=random.Random(7))
    sim.run(until=50.0)
    model.stop()
    sim.drain()
    assert model.moves_started > 0
    total_moves = sum(sim.mh(i).moves_completed for i in range(10))
    assert total_moves == model.moves_started


def test_uniform_mobility_never_targets_current_cell():
    sim = make_sim(n_mss=3, n_mh=4)
    model = UniformMobility(sim.network, sim.mh_ids, move_rate=1.0,
                            rng=random.Random(3))
    for _ in range(50):
        dest = model.choose_destination("mh-0", "mss-1")
        assert dest != "mss-1"


def test_graph_mobility_respects_adjacency():
    sim = make_sim(n_mss=9, n_mh=5)
    graph = nx.grid_2d_graph(3, 3)
    adjacency = GraphMobility.adjacency_from_graph(graph, sim.mss_ids)
    model = GraphMobility(sim.network, sim.mh_ids, move_rate=1.0,
                          rng=random.Random(5), adjacency=adjacency)
    for cell, neighbours in adjacency.items():
        for _ in range(10):
            dest = model.choose_destination("mh-0", cell)
            assert dest in neighbours
    sim.run(until=20.0)
    model.stop()
    sim.drain()
    assert model.moves_started > 0


def test_graph_mobility_rejects_unknown_cells():
    sim = make_sim(n_mss=3, n_mh=2)
    with pytest.raises(ConfigurationError):
        GraphMobility(sim.network, sim.mh_ids, 1.0, random.Random(1),
                      adjacency={"mss-0": ["nope"]})


def test_adjacency_from_graph_size_mismatch():
    sim = make_sim(n_mss=3, n_mh=2)
    with pytest.raises(ConfigurationError):
        GraphMobility.adjacency_from_graph(
            nx.path_graph(5), sim.mss_ids
        )


def test_localized_mobility_stays_home_without_escape():
    sim = make_sim(n_mss=8, n_mh=4)
    home = ["mss-0", "mss-1"]
    model = LocalizedMobility(
        sim.network, sim.mh_ids[:2], move_rate=1.0,
        rng=random.Random(11), home_cells=home,
    )
    sim.run(until=30.0)
    model.stop()
    sim.drain()
    for i in range(2):
        assert sim.mh(i).current_mss_id in home


def test_localized_mobility_escapes_with_probability_one():
    sim = make_sim(n_mss=8, n_mh=2)
    model = LocalizedMobility(
        sim.network, sim.mh_ids, move_rate=1.0,
        rng=random.Random(2), home_cells=["mss-0"],
        escape_probability=1.0,
    )
    dest = model.choose_destination("mh-0", "mss-0")
    assert dest not in ("mss-0", None)


def test_trace_mobility_replays_exactly():
    sim = make_sim(n_mss=4, n_mh=2)
    TraceMobility(sim.network, [
        (5.0, "mh-0", "mss-2"),
        (10.0, "mh-1", "mss-3"),
        (15.0, "mh-0", "mss-1"),
    ])
    sim.drain()
    assert sim.mh(0).current_mss_id == "mss-1"
    assert sim.mh(1).current_mss_id == "mss-3"
    assert sim.mh(0).moves_completed == 2


def test_trace_mobility_skips_noop_and_detached_moves():
    sim = make_sim(n_mss=4, n_mh=1)
    trace = TraceMobility(sim.network, [
        (1.0, "mh-0", "mss-0"),   # already there
    ])
    sim.drain()
    assert trace.moves_skipped == 1
    assert sim.mh(0).moves_completed == 0


def test_disconnection_model_cycles():
    sim = make_sim(n_mss=4, n_mh=4)
    model = DisconnectionModel(
        sim.network, sim.mh_ids, disconnect_rate=0.2, downtime=2.0,
        rng=random.Random(9),
    )
    sim.run(until=60.0)
    model.stop()
    sim.drain()
    assert model.disconnections > 0
    # Everyone is back online after the drain.
    for i in range(4):
        assert sim.mh(i).is_connected


def test_disconnection_model_skips_already_disconnected_mh():
    sim = make_sim(n_mss=4, n_mh=2)
    model = DisconnectionModel(
        sim.network, sim.mh_ids, disconnect_rate=0.5, downtime=1.0,
        rng=random.Random(1),
    )
    model.stop()  # drive the timer callback by hand below
    sim.mh(0).disconnect()
    sim.drain()
    # The model's timer fires against an already-disconnected MH: the
    # cycle is skipped, not double-counted, and no reconnect is owed.
    model._try_disconnect("mh-0")
    sim.drain()
    assert model.disconnections == 0
    assert sim.mh(0).is_disconnected


def test_disconnection_model_with_zero_mhs_is_inert():
    sim = make_sim(n_mss=3, n_mh=0)
    model = DisconnectionModel(
        sim.network, [], disconnect_rate=1.0, downtime=1.0,
        rng=random.Random(1),
    )
    events = sim.drain()
    assert events == 0
    assert model.disconnections == 0
    model.stop()  # also a no-op


def test_disconnection_model_rejects_nonpositive_downtime():
    sim = make_sim(n_mss=3, n_mh=2)
    with pytest.raises(ConfigurationError):
        DisconnectionModel(
            sim.network, sim.mh_ids, disconnect_rate=0.5, downtime=0.0,
            rng=random.Random(1),
        )


def test_mobility_model_rejects_empty_mh_list():
    sim = make_sim(n_mss=3, n_mh=0)
    with pytest.raises(ConfigurationError):
        UniformMobility(sim.network, [], move_rate=1.0,
                        rng=random.Random(1))


def test_disconnection_without_prev_still_recovers():
    sim = make_sim(n_mss=4, n_mh=2)
    model = DisconnectionModel(
        sim.network, sim.mh_ids, disconnect_rate=0.5, downtime=1.0,
        rng=random.Random(4), supply_prev=False,
    )
    sim.run(until=20.0)
    model.stop()
    sim.drain()
    for i in range(2):
        assert sim.mh(i).is_connected
    for i in range(sim.n_mss):
        assert not sim.mss(i).disconnected_mhs
