"""Tests for Algorithm R1: the token ring of mobile hosts."""

from __future__ import annotations

from repro import Category, CriticalResource, R1Mutex
from repro.analysis import formulas

from conftest import make_sim


def build_r1(n=4, max_traversals=1, **kwargs):
    sim = make_sim(n_mss=n, n_mh=n, placement="round_robin", **kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(
        sim.network, sim.mh_ids, resource, max_traversals=max_traversals
    )
    return sim, resource, mutex


def test_token_circulates_and_serves_requests():
    sim, resource, mutex = build_r1(n=4)
    mutex.want("mh-1")
    mutex.want("mh-3")
    mutex.start()
    sim.drain()
    assert sorted(resource.holders_in_order()) == ["mh-1", "mh-3"]
    resource.assert_no_overlap()
    assert mutex.finished


def test_traversal_cost_matches_paper_formula():
    sim, resource, mutex = build_r1(n=5)
    costs = sim.cost_model
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.cost(costs, "R1") == formulas.r1_traversal_cost(5, costs)
    assert delta.total(Category.SEARCH, "R1") == \
        formulas.r1_search_count(5)


def test_traversal_cost_independent_of_requests_served():
    results = {}
    for k in (0, 3):
        sim, resource, mutex = build_r1(n=5)
        for mh_id in sim.mh_ids[:k]:
            mutex.want(mh_id)
        before = sim.metrics.snapshot()
        mutex.start()
        sim.drain()
        results[k] = sim.metrics.since(before).cost(sim.cost_model, "R1")
        assert resource.access_count == k
    assert results[0] == results[3]


def test_every_mh_pays_energy_each_traversal():
    sim, resource, mutex = build_r1(n=4)
    mutex.start()
    sim.drain()
    total = sum(sim.metrics.energy(mh_id) for mh_id in sim.mh_ids)
    assert total == formulas.r1_energy_per_traversal(4)
    for mh_id in sim.mh_ids:
        assert sim.metrics.energy(mh_id) == 2  # receive + forward


def test_dozing_mh_interrupted_even_without_request():
    sim, resource, mutex = build_r1(n=4)
    sim.mh(2).doze()
    mutex.start()
    sim.drain()
    assert sim.mh(2).doze_interruptions == 1
    assert resource.access_count == 0


def test_multiple_traversals():
    sim, resource, mutex = build_r1(n=3, max_traversals=3)
    mutex.start()
    sim.drain()
    # 3 traversals x 3 hops.
    assert sim.metrics.total(Category.SEARCH, "R1") == 9


def test_disconnection_stalls_the_ring():
    sim, resource, mutex = build_r1(n=4, max_traversals=2)
    sim.mh(2).disconnect()
    sim.drain()
    mutex.want("mh-3")
    mutex.start()
    sim.run(until=300.0)
    # The token cannot pass the disconnected member; mh-3 is never
    # served even though it comes after mh-2 in the ring.
    assert mutex.stalled_on == "mh-2"
    assert resource.access_count == 0
    assert not mutex.finished


def test_moving_member_still_receives_token():
    sim, resource, mutex = build_r1(n=4)
    mutex.want("mh-2")
    sim.mh(2).move_to("mss-0")
    sim.drain()
    mutex.start()
    sim.drain()
    assert resource.holders_in_order() == ["mh-2"]


def test_want_is_consumed_by_one_access():
    sim, resource, mutex = build_r1(n=3, max_traversals=2)
    mutex.want("mh-1")
    mutex.start()
    sim.drain()
    assert resource.access_count == 1


class TestRingRepair:
    """The ring re-establishment extension (auto_repair=True)."""

    def test_repair_removes_dead_member_and_continues(self):
        sim = make_sim(n_mss=5, n_mh=5, placement="round_robin")
        from repro import CriticalResource, R1Mutex
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        max_traversals=2, auto_repair=True)
        sim.mh(2).disconnect()
        sim.drain()
        mutex.want("mh-3")
        mutex.start()
        sim.drain()
        assert mutex.repairs == 1
        assert mutex.stalled_on is None
        assert "mh-2" not in mutex.mh_ids
        assert resource.holders_in_order() == ["mh-3"]
        assert mutex.finished

    def test_repair_cost_is_measured(self):
        sim = make_sim(n_mss=5, n_mh=5, placement="round_robin")
        from repro import Category, CriticalResource, R1Mutex
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        max_traversals=1, auto_repair=True)
        sim.mh(2).disconnect()
        sim.drain()
        before = sim.metrics.snapshot()
        mutex.start()
        sim.drain()
        delta = sim.metrics.since(before)
        # One traversal of the 4 survivors (4 searches) plus the failed
        # delivery search, 4 reconfig deliveries and the token re-route.
        assert delta.total(Category.SEARCH, "R1") > 4

    def test_multiple_disconnections_all_repaired(self):
        sim = make_sim(n_mss=6, n_mh=6, placement="round_robin")
        from repro import CriticalResource, R1Mutex
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        max_traversals=2, auto_repair=True)
        sim.mh(1).disconnect()
        sim.mh(4).disconnect()
        sim.drain()
        mutex.want("mh-5")
        mutex.start()
        sim.drain()
        assert mutex.repairs == 2
        assert sorted(mutex.mh_ids) == ["mh-0", "mh-2", "mh-3", "mh-5"]
        assert resource.holders_in_order() == ["mh-5"]
        assert mutex.finished

    def test_head_removal_moves_traversal_counting(self):
        sim = make_sim(n_mss=4, n_mh=4, placement="round_robin")
        from repro import CriticalResource, R1Mutex
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        max_traversals=2, auto_repair=True)
        sim.mh(0).disconnect()  # the ring head
        sim.drain()
        mutex.start()
        sim.run(until=500.0)
        assert mutex.repairs == 1
        assert mutex.finished
