"""Chaos tests: R2 under message loss and MSS crashes.

The acceptance scenario for the fault subsystem: a plan that drops 10%
of all fixed-network messages and crashes one MSS mid-run.  Every R2
variant must still serve every submitted request (liveness, via the
reliable channel, token regeneration and request resubmission) without
ever violating mutual exclusion (safety).

The base seed can be overridden with ``REPRO_CHAOS_SEED`` so CI can
sweep several seeds without editing the suite.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    CriticalResource,
    FaultPlan,
    LinkFault,
    LivenessMonitor,
    MssCrash,
    R2Mutex,
    R2Variant,
    Simulation,
    safety_monitors,
)
from repro.metrics.render import fault_summary

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

ALL_VARIANTS = [R2Variant.PLAIN, R2Variant.COUNTER, R2Variant.TOKEN_LIST]


def chaos_monitors():
    """The full safety set plus a liveness watchdog whose deadlines are
    sized for any CI sweep seed (losses can honestly delay service for
    hundreds of sim-time units; only a wedged run should trip it)."""
    return safety_monitors() + [
        LivenessMonitor(request_deadline=1000.0, token_deadline=1000.0)
    ]


def run_chaos(variant, plan, seed=CHAOS_SEED, n_mss=4, n_mh=8):
    """One R2 run with staggered single requests from every MH.

    Every chaos run executes under the online invariant monitors: the
    whole point of the fault matrix is that loss, duplication and
    crashes never buy a safety violation, so each run must end with
    ``assert_invariants`` holding.
    """
    sim = Simulation(n_mss=n_mss, n_mh=n_mh, seed=seed, fault_plan=plan,
                     monitors=chaos_monitors())
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        variant=variant,
        max_traversals=200,
        token_timeout=30.0,
    )
    for i in range(n_mh):
        sim.scheduler.schedule(1.0 + 2.0 * i, mutex.request, f"mh-{i}")
    mutex.start()
    sim.drain()
    sim.assert_invariants()
    return sim, resource, mutex


def crash_plan(seed=CHAOS_SEED, recover_at=80.0):
    return FaultPlan(
        link_faults=(LinkFault(drop=0.1),),
        crashes=(MssCrash("mss-2", at=30.0, recover_at=recover_at),),
        seed=seed,
    )


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
def test_r2_survives_loss_and_mid_run_crash(variant):
    sim, resource, mutex = run_chaos(variant, crash_plan())
    served = {mh_id for (_, mh_id) in mutex.completed}
    assert served == set(sim.mh_ids)
    resource.assert_no_overlap()
    snap = sim.metrics.snapshot()
    # The plan really did bite, and recovery really did happen.
    assert snap.fault_total("fixed.dropped") > 0
    assert snap.fault_total("rel.retransmit") > 0
    assert snap.fault_total("mss.crash") == 1
    assert snap.fault_total("mh.orphaned") > 0
    assert snap.fault_total("mh.rejoined") == snap.fault_total("mh.orphaned")
    assert len(snap.recovery_times) == 1


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
def test_r2_survives_permanent_crash(variant):
    """The crashed station never returns; the ring routes around it."""
    sim, resource, mutex = run_chaos(
        variant, crash_plan(recover_at=None)
    )
    served = {mh_id for (_, mh_id) in mutex.completed}
    assert served == set(sim.mh_ids)
    resource.assert_no_overlap()
    assert sim.metrics.fault_total("r2.ring_skip") > 0


def test_regeneration_count_is_bounded():
    """Token regeneration is a recovery of last resort, not a cycle."""
    sim, resource, mutex = run_chaos(R2Variant.COUNTER, crash_plan())
    assert mutex.regenerations <= 3


def test_fault_counters_render():
    sim, _, _ = run_chaos(R2Variant.COUNTER, crash_plan())
    text = fault_summary(sim.metrics.snapshot())
    assert "mss.crash" in text
    assert "rel.retransmit" in text
    assert "recoveries" in text


def test_report_includes_faults_and_recovery():
    sim, _, _ = run_chaos(R2Variant.COUNTER, crash_plan())
    report = sim.metrics.report(sim.cost_model)
    assert report["faults"]["mss.crash"] == 1
    assert report["recovery"]["count"] == 1
    assert report["recovery"]["mean"] > 0


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
def test_chaos_runs_hold_every_safety_invariant(variant):
    """The monitors really watched: violations are zero, not unchecked."""
    sim, _, _ = run_chaos(variant, crash_plan())
    hub = sim.monitor_hub
    assert hub is not None
    assert hub.ok, hub.report()
    assert hub.violations == []


def test_fault_free_runs_are_untouched_by_the_subsystem():
    """No plan installed: zero fault events, no reliable envelopes."""
    sim = Simulation(n_mss=4, n_mh=4, seed=CHAOS_SEED)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=1)
    assert mutex.fault_tolerant is False
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    mutex.start()
    sim.drain()
    assert sorted(resource.holders_in_order()) == sorted(sim.mh_ids)
    assert sim.metrics.fault_total() == 0
    assert fault_summary(sim.metrics.snapshot()) == ""


def test_cli_runs_with_inline_fault_plan():
    from repro.cli import main

    lines = []
    code = main(
        [
            "mutex", "--algorithm", "R2'", "--duration", "200",
            "--seed", str(CHAOS_SEED),
            "--fault-plan",
            '{"link_faults": [{"drop": 0.1}],'
            ' "crashes": [{"mss_id": "mss-2", "at": 30.0,'
            ' "recover_at": 80.0}]}',
        ],
        emit=lines.append,
    )
    out = "\n".join(lines)
    assert code == 0
    assert "safety         : verified" in out
    assert "fault events" in out
    assert "mss.crash" in out
