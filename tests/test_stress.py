"""Randomized end-to-end stress tests.

Hypothesis drives whole-system runs -- random seeds, rates, sizes --
and checks the invariants that must hold under *any* interleaving:
mutual exclusion safety, eventual completion, delivery accounting, and
FIFO ordering.  These are the tests that catch race conditions the
deterministic scenario tests cannot reach.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro import (
    CriticalResource,
    L2Mutex,
    NetworkConfig,
    R2Mutex,
    R2Variant,
    Simulation,
    UniformLatency,
)
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)
from repro.mobility import DisconnectionModel, UniformMobility
from repro.proxy import (
    AdaptiveProxyPolicy,
    ProxiedMessenger,
    ProxyManager,
)
from repro.workload import GroupMessagingWorkload, MutexWorkload

STRESS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_latency_sim(seed, n_mss, n_mh):
    return Simulation(
        n_mss=n_mss,
        n_mh=n_mh,
        seed=seed,
        config=NetworkConfig(
            fixed_latency=UniformLatency(0.2, 3.0),
            wireless_latency=UniformLatency(0.1, 1.0),
        ),
        placement="random",
    )


@STRESS
@given(
    seed=st.integers(0, 10_000),
    n_mss=st.integers(2, 8),
    n_mh=st.integers(2, 16),
    move_rate=st.floats(0.0, 0.1),
)
def test_l2_safety_under_random_mobility(seed, n_mss, n_mh, move_rate):
    sim = random_latency_sim(seed, n_mss, n_mh)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.4)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.05,
                             rng=random.Random(seed + 1))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 2))
    sim.run(until=150.0)
    workload.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    resource.assert_no_overlap()
    assert workload.completed == workload.issued
    assert resource.access_count == workload.issued


@STRESS
@given(
    seed=st.integers(0, 10_000),
    variant=st.sampled_from(list(R2Variant)),
    n_mh=st.integers(2, 10),
    move_rate=st.floats(0.0, 0.05),
)
def test_r2_safety_under_random_mobility(seed, variant, n_mh, move_rate):
    sim = random_latency_sim(seed, 5, n_mh)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, cs_duration=0.3,
                    variant=variant)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.04,
                             rng=random.Random(seed + 1))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 2))
    mutex.start()
    sim.run(until=150.0)
    workload.stop()
    if mobility is not None:
        mobility.stop()
    # Keep circulating until every issued request completed.
    deadline = sim.now + 3000.0
    while workload.completed < workload.issued and sim.now < deadline:
        sim.run(until=sim.now + 50.0)
    mutex.max_traversals = 0
    sim.run(until=sim.now + 300.0)
    resource.assert_no_overlap()
    assert workload.completed == workload.issued


@STRESS
@given(
    seed=st.integers(0, 10_000),
    downtime=st.floats(1.0, 10.0),
)
def test_l2_safety_under_disconnections(seed, downtime):
    """Random disconnect/reconnect cycles: some requests abort, some
    complete, safety always holds, nothing hangs."""
    sim = random_latency_sim(seed, 4, 8)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.5)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.04,
                             rng=random.Random(seed + 1))
    churn = DisconnectionModel(sim.network, sim.mh_ids,
                               disconnect_rate=0.02,
                               downtime=downtime,
                               rng=random.Random(seed + 2))
    sim.run(until=200.0)
    workload.stop()
    churn.stop()
    sim.drain()
    resource.assert_no_overlap()
    # Every issued request either completed or was aborted because the
    # requester disconnected before its grant.
    aborted = len(mutex.aborted)
    assert workload.completed + aborted == workload.issued
    # The region is free at the end.
    assert resource.holder is None


@STRESS
@given(
    seed=st.integers(0, 10_000),
    strategy_class=st.sampled_from(
        [PureSearchGroup, AlwaysInformGroup, LocationViewGroup]
    ),
    group_size=st.integers(2, 8),
    move_rate=st.floats(0.0, 0.05),
)
def test_group_delivery_accounting(seed, strategy_class, group_size,
                                   move_rate):
    """Over any run: every group message accounts for all |G|-1
    recipients as either delivered or missed-in-transient."""
    sim = random_latency_sim(seed, 6, group_size)
    group = strategy_class(sim.network, sim.mh_ids)
    workload = GroupMessagingWorkload(sim.network, group,
                                      message_rate=0.05,
                                      rng=random.Random(seed + 1))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 2))
    sim.run(until=200.0)
    workload.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    expected = group.stats.messages * (group_size - 1)
    assert group.stats.deliveries + group.stats.missed == expected
    # Without mobility nothing can be missed.
    if move_rate == 0:
        assert group.stats.missed == 0


@STRESS
@given(
    seed=st.integers(0, 10_000),
    n_messages=st.integers(1, 60),
)
def test_fixed_network_fifo_property(seed, n_messages):
    sim = random_latency_sim(seed, 2, 0)
    got = []
    sim.mss(1).register_handler("fifo.t", lambda m: got.append(m.payload))
    from repro.net.messages import Message
    for i in range(n_messages):
        sim.network.send_fixed(Message(
            kind="fifo.t", src="mss-0", dst="mss-1", payload=i,
            scope="t",
        ))
        if i % 3 == 0:
            sim.run(until=sim.now + 0.5)
    sim.drain()
    assert got == list(range(n_messages))


@STRESS
@given(seed=st.integers(0, 10_000))
def test_protocols_coexist_on_one_system(seed):
    """L2 mutex, an R2 ring, a location-view group and an adaptive
    proxy messenger all share one network without interfering."""
    sim = random_latency_sim(seed, 5, 12)
    rng = random.Random(seed + 1)

    resource_a = CriticalResource(sim.scheduler)
    l2 = L2Mutex(sim.network, resource_a, cs_duration=0.3, scope="L2x")
    resource_b = CriticalResource(sim.scheduler)
    r2 = R2Mutex(sim.network, resource_b, cs_duration=0.3, scope="R2x")
    group = LocationViewGroup(sim.network, sim.mh_ids[:5],
                              scope="lvx")
    manager = ProxyManager(sim.network, AdaptiveProxyPolicy(),
                           sim.mh_ids, scope="proxyx")
    messenger = ProxiedMessenger(manager)

    l2_work = MutexWorkload(sim.network, l2, sim.mh_ids[:6], 0.03,
                            rng=random.Random(seed + 2))
    r2_work = MutexWorkload(sim.network, r2, sim.mh_ids[6:], 0.03,
                            rng=random.Random(seed + 3))
    group_work = GroupMessagingWorkload(sim.network, group, 0.04,
                                        rng=random.Random(seed + 4))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.01,
                               rng=random.Random(seed + 5))
    sent = [0]

    def send_letter():
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            sent[0] += 1
            messenger.send(src, dst, ("l", sent[0]))

    from repro.sim import PoissonProcess
    letters = PoissonProcess(sim.scheduler, 0.03, send_letter,
                             rng=random.Random(seed + 6))

    r2.start()
    sim.run(until=150.0)
    for stoppable in (l2_work, r2_work, group_work, mobility, letters):
        stoppable.stop()
    deadline = sim.now + 3000.0
    while r2_work.completed < r2_work.issued and sim.now < deadline:
        sim.run(until=sim.now + 50.0)
    r2.max_traversals = 0
    sim.run(until=sim.now + 300.0)
    sim.drain()

    resource_a.assert_no_overlap()
    resource_b.assert_no_overlap()
    assert l2_work.completed == l2_work.issued
    assert r2_work.completed == r2_work.issued
    assert len(messenger.delivered) == sent[0]
    expected = group.stats.messages * 4
    assert group.stats.deliveries + group.stats.missed == expected
