"""Partition heals racing handoffs: nothing doubles, nothing strands.

The nasty interleaving: a mobile host hands off across the partition
boundary while the wired network is split, so the deregistration pull
between its old and new stations queues behind the partition; messages
addressed to the host keep arriving meanwhile.  When the partition
heals, the queued handoff state and the retransmitted traffic land
together.  These tests pin the contract under the FIFO and
exactly-once monitors: every message is delivered exactly once, in
order, and no message is stranded at the old station.
"""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    LivenessMonitor,
    Partition,
    Simulation,
    safety_monitors,
)
from repro.multicast import ExactlyOnceMulticast

HALVES = Partition(
    groups=(("mss-0", "mss-1"), ("mss-2", "mss-3")),
    start=20.0, end=60.0,
)


def monitors():
    return safety_monitors() + [
        LivenessMonitor(request_deadline=1000.0, token_deadline=1000.0)
    ]


def split_sim(n_mh=6, seed=7):
    plan = FaultPlan(partitions=(HALVES,), seed=seed)
    return Simulation(n_mss=4, n_mh=n_mh, seed=seed, fault_plan=plan,
                      monitors=monitors())


def assert_clean(sim):
    sim.assert_invariants()
    assert sim.monitor_hub.violations == []


def test_handoff_across_live_partition_completes_after_heal():
    """mh-0 moves from the first half to the second while they cannot
    talk; the deregistration handshake must finish once they can."""
    sim = split_sim()
    mh = sim.mh(0)
    assert mh.current_mss_id == "mss-0"
    sim.scheduler.schedule_at(25.0, mh.move_to, "mss-2")
    sim.drain()
    assert sim.now >= 60.0  # the heal really was in the critical path
    assert mh.current_mss_id == "mss-2"
    assert mh.is_connected
    assert_clean(sim)


def test_no_double_delivery_when_heal_races_handoff():
    """Messages multicast during the split, with a member handing off
    across the boundary right at the heal instant, arrive exactly once
    and in total order at every member."""
    sim = split_sim()
    members = sim.mh_ids
    feed = ExactlyOnceMulticast(sim.network, members)
    # Traffic before, during and at the heal; the mover changes halves
    # in the same instants the queued partition traffic is released.
    for at, sender in ((10.0, "mh-1"), (30.0, "mh-2"), (45.0, "mh-3"),
                       (59.5, "mh-1"), (61.0, "mh-4")):
        sim.scheduler.schedule_at(
            at, lambda s=sender: feed.send(s, ("m", at))
        )
    sim.scheduler.schedule_at(59.9, sim.mh(0).move_to, "mss-3")
    sim.drain()
    total = feed.messages_sent
    assert total == 5
    for member in members:
        assert feed.delivered_seqs(member) == list(range(1, total + 1))
    assert_clean(sim)


def test_messages_to_mid_handoff_mover_are_not_stranded():
    """A burst addressed to the mover while its handoff is wedged
    behind the partition drains completely after the heal -- nothing
    stays buffered at the old station."""
    sim = split_sim()
    members = sim.mh_ids[:4]
    feed = ExactlyOnceMulticast(sim.network, members)
    sim.scheduler.schedule_at(22.0, sim.mh(0).move_to, "mss-2")
    for at in (24.0, 28.0, 35.0, 50.0):
        sim.scheduler.schedule_at(
            at, lambda: feed.send("mh-1", ("burst", at))
        )
    sim.drain()
    total = feed.messages_sent
    assert feed.delivered_seqs("mh-0") == list(range(1, total + 1))
    # Garbage collection emptied every station buffer: no message is
    # stranded waiting for a host that already left.
    for mss_id in sim.mss_ids:
        assert feed.buffer_size(mss_id) == 0
    assert_clean(sim)


@pytest.mark.parametrize("move_at", [19.5, 20.5, 59.5, 60.5])
def test_handoff_timing_sweep_around_split_and_heal(move_at):
    """Handoffs landing just before/after the split and just
    before/after the heal all converge with zero violations."""
    sim = split_sim(n_mh=4)
    sim.scheduler.schedule_at(move_at, sim.mh(1).move_to, "mss-3")
    sim.drain()
    assert sim.mh(1).current_mss_id == "mss-3"
    assert_clean(sim)
