"""Tests for the caching search protocol (extension of [10]'s idea)."""

from __future__ import annotations

from repro import Category
from repro.net.cache_search import CachingSearch
from repro.net.messages import Message

from conftest import make_sim


def send(sim, dst_mh, payload=None, on_disconnected=None):
    sim.network.send_to_mh(
        "mss-0", dst_mh,
        Message(kind="cs.msg", src="mss-0", dst=dst_mh,
                payload=payload, scope="cs"),
        on_disconnected=on_disconnected,
    )


def build(n_mss=6):
    sim = make_sim(n_mss=n_mss, n_mh=3, search="caching")
    for i in range(3):
        sim.mh(i).register_handler("cs.msg", lambda m: None)
    protocol: CachingSearch = sim.network.search_protocol
    return sim, protocol


def test_first_search_is_broadcast():
    sim, protocol = build()
    send(sim, "mh-1")
    sim.drain()
    # M-1 queries + reply + forward.
    assert sim.metrics.total(Category.SEARCH_PROBE, "cs") == 5 + 1 + 1
    assert protocol.hits == 0
    assert protocol.misses == 0


def test_second_search_hits_cache():
    sim, protocol = build()
    send(sim, "mh-1")
    sim.drain()
    before = sim.metrics.total(Category.SEARCH_PROBE, "cs")
    send(sim, "mh-1")
    sim.drain()
    # Cache hit: query + reply + forward = 3 probes only.
    assert sim.metrics.total(Category.SEARCH_PROBE, "cs") - before == 3
    assert protocol.hits == 1


def test_stale_cache_falls_back_to_broadcast():
    sim, protocol = build()
    send(sim, "mh-1")
    sim.drain()
    sim.mh(1).move_to("mss-4")
    sim.drain()
    before = sim.metrics.total(Category.SEARCH_PROBE, "cs")
    send(sim, "mh-1")
    sim.drain()
    # Stale probe pair + broadcast sweep + forward.
    assert sim.metrics.total(Category.SEARCH_PROBE, "cs") - before == \
        2 + (5 + 1) + 1
    assert protocol.misses == 1
    # And the cache is refreshed: next search hits.
    before_hits = protocol.hits
    send(sim, "mh-1")
    sim.drain()
    assert protocol.hits == before_hits + 1


def test_moves_generate_no_maintenance_traffic():
    sim, protocol = build()
    before = sim.metrics.total(Category.FIXED, "search-maintenance")
    sim.mh(1).move_to("mss-3")
    sim.drain()
    assert sim.metrics.total(
        Category.FIXED, "search-maintenance"
    ) == before


def test_disconnected_mh_resolves_to_status():
    sim, protocol = build()
    outcomes = []
    sim.mh(1).disconnect()
    sim.drain()
    send(sim, "mh-1", on_disconnected=outcomes.append)
    sim.drain()
    assert len(outcomes) == 1
    assert outcomes[0].disconnected
    assert outcomes[0].mss_id == "mss-1"


def test_search_waits_for_mh_in_transit():
    sim, protocol = build()
    sim.mh(1).move_to("mss-5")
    send(sim, "mh-1")
    sim.drain()
    assert sim.mh(1).current_mss_id == "mss-5"
    # The delivery landed despite starting mid-move.
    assert sim.metrics.total(Category.WIRELESS, "cs") == 1


def test_caches_are_per_searching_mss():
    sim, protocol = build()
    send(sim, "mh-1")
    sim.drain()
    # A different MSS searching the same MH has no cache entry.
    sim.mh(2).register_handler("cs.other", lambda m: None)
    sim.network.send_to_mh(
        "mss-3", "mh-1",
        Message(kind="cs.msg", src="mss-3", dst="mh-1", scope="cs2"),
    )
    sim.drain()
    # Full broadcast for the new searcher.
    assert sim.metrics.total(Category.SEARCH_PROBE, "cs2") == 5 + 1 + 1
