"""Chaos tests: mobile-host crashes, alone and combined with MSS
crashes and message loss.

The acceptance scenario for the MH fault layer: plans that crash hosts
mid-protocol (some amnesiac), crash a station on top, and drop fixed
messages -- and every algorithm in the family still grants the region
to a post-recovery requester without ever violating an invariant.

The base seed can be overridden with ``REPRO_CHAOS_SEED`` so CI can
sweep several seeds without editing the suite.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    CriticalResource,
    FaultPlan,
    L1Mutex,
    L2Mutex,
    LinkFault,
    LivenessMonitor,
    MhCrash,
    MssCrash,
    R1Mutex,
    R2Mutex,
    R2Variant,
    Simulation,
    safety_monitors,
)
from repro.net import ConstantLatency, NetworkConfig

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

ALL_VARIANTS = [R2Variant.PLAIN, R2Variant.COUNTER, R2Variant.TOKEN_LIST]


def chaos_monitors():
    """The full safety set plus a liveness watchdog sized for any CI
    sweep seed (crash windows honestly delay service for long stretches;
    only a wedged run should trip it)."""
    return safety_monitors() + [
        LivenessMonitor(request_deadline=1000.0, token_deadline=1000.0)
    ]


def chaos_sim(plan, n_mss=4, n_mh=6, seed=CHAOS_SEED):
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    return Simulation(
        n_mss=n_mss, n_mh=n_mh, seed=seed, config=config,
        fault_plan=plan, monitors=chaos_monitors(),
    )


def combined_plan(seed=CHAOS_SEED):
    """MSS crash + MH crashes (one amnesiac) + 5% fixed-message loss."""
    return FaultPlan(
        link_faults=(LinkFault(drop=0.05),),
        crashes=(MssCrash("mss-2", at=30.0, recover_at=80.0),),
        mh_crashes=(
            MhCrash("mh-1", at=20.0, recover_at=45.0),
            MhCrash("mh-3", at=55.0, recover_at=75.0, amnesia=True),
        ),
        seed=seed,
    )


def mh_only_plan(seed=CHAOS_SEED, amnesia=True):
    return FaultPlan(
        mh_crashes=(
            MhCrash("mh-0", at=6.0, recover_at=22.0, amnesia=amnesia),
        ),
        seed=seed,
    )


# ----------------------------------------------------------------------
# R2 under the combined matrix: the flagship algorithm must serve every
# submitted request through MSS *and* MH crashes.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
def test_r2_serves_everyone_through_combined_faults(variant):
    sim = chaos_sim(combined_plan(), n_mh=6)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        variant=variant,
        max_traversals=300,
        token_timeout=30.0,
    )
    for i in range(6):
        sim.scheduler.schedule(1.0 + 9.0 * i, mutex.request, f"mh-{i}")
    mutex.start()
    sim.drain()
    sim.assert_invariants()
    served = {mh_id for (_, mh_id) in mutex.completed}
    assert served == set(sim.mh_ids)
    resource.assert_no_overlap()
    snap = sim.metrics.snapshot()
    # The plan really did bite on every axis.
    assert snap.fault_total("mss.crash") == 1
    assert snap.fault_total("mh.crash") == 2
    assert snap.fault_total("mh.recover") == 2
    hub = sim.monitor_hub
    assert hub is not None
    assert hub.ok, hub.report()
    assert hub.violations == []


# ----------------------------------------------------------------------
# Post-recovery grants: each algorithm in the family must grant the
# region to a requester that crashed and came back -- amnesiac, with
# its volatile protocol state gone.
# ----------------------------------------------------------------------


def _assert_clean(sim, resource, mutex, must_serve):
    sim.assert_invariants()
    served = {mh_id for (_, mh_id) in mutex.completed}
    assert must_serve <= served, f"unserved: {must_serve - served}"
    resource.assert_no_overlap()
    hub = sim.monitor_hub
    assert hub.ok, hub.report()
    assert hub.violations == []


def test_l1_grants_to_post_recovery_requester():
    sim = chaos_sim(mh_only_plan(), n_mss=3, n_mh=3)
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource, cs_duration=2.0)
    sim.scheduler.schedule_at(1.0, mutex.request, "mh-1")
    # mh-0 asks only after its recovery at 22.0: the amnesiac rejoiner
    # must be re-announced to and then served.
    sim.scheduler.schedule_at(25.0, mutex.request, "mh-0")
    sim.drain()
    _assert_clean(sim, resource, mutex, {"mh-0", "mh-1"})


def test_l2_grants_to_post_recovery_requester():
    sim = chaos_sim(mh_only_plan(), n_mss=3, n_mh=3)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=2.0)
    sim.scheduler.schedule_at(1.0, mutex.request, "mh-1")
    sim.scheduler.schedule_at(25.0, mutex.request, "mh-0")
    sim.drain()
    _assert_clean(sim, resource, mutex, {"mh-0", "mh-1"})


def test_r1_grants_to_post_recovery_requester():
    sim = chaos_sim(mh_only_plan(), n_mss=3, n_mh=3)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(
        sim.network, sim.mh_ids, resource,
        cs_duration=2.0, max_traversals=80, auto_repair=True,
    )
    mutex.want("mh-1")
    sim.scheduler.schedule_at(25.0, mutex.want, "mh-0")
    mutex.start()
    sim.drain()
    _assert_clean(sim, resource, mutex, {"mh-0", "mh-1"})


def test_r2_grants_to_post_recovery_requester():
    sim = chaos_sim(mh_only_plan(), n_mss=3, n_mh=3)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network, resource, max_traversals=80, token_timeout=30.0,
    )
    sim.scheduler.schedule(1.0, mutex.request, "mh-1")
    sim.scheduler.schedule_at(25.0, mutex.request, "mh-0")
    mutex.start()
    sim.drain()
    _assert_clean(sim, resource, mutex, {"mh-0", "mh-1"})


def test_r2_serves_request_lost_to_crash():
    """A request submitted just before the crash is resubmitted by the
    recovery hooks -- the claim survives the host's amnesia."""
    sim = chaos_sim(mh_only_plan(), n_mss=3, n_mh=3)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network, resource, max_traversals=80, token_timeout=30.0,
    )
    # Submitted at 5.5, crash at 6.0: the grant cannot land in time.
    sim.scheduler.schedule_at(5.5, mutex.request, "mh-0")
    sim.scheduler.schedule_at(8.0, mutex.request, "mh-1")
    mutex.start()
    sim.drain()
    _assert_clean(sim, resource, mutex, {"mh-0", "mh-1"})
