"""Integration tests for the network: FIFO, loss, search, delivery."""

from __future__ import annotations

import pytest

from repro import Category, NotConnectedError
from repro.net import NetworkConfig, UniformLatency
from repro.net.messages import Message

from conftest import make_sim


def fixed_msg(src, dst, kind="test.ping", payload=None, scope="test"):
    return Message(kind=kind, src=src, dst=dst, payload=payload, scope=scope)


class TestFixedNetwork:
    def test_delivery_between_mss(self):
        sim = make_sim()
        got = []
        sim.mss(1).register_handler("test.ping", got.append)
        sim.network.send_fixed(fixed_msg("mss-0", "mss-1", payload=42))
        sim.drain()
        assert len(got) == 1
        assert got[0].payload == 42

    def test_fixed_message_counted_once(self):
        sim = make_sim()
        sim.mss(1).register_handler("test.ping", lambda m: None)
        sim.network.send_fixed(fixed_msg("mss-0", "mss-1"))
        sim.drain()
        assert sim.metrics.total(Category.FIXED, "test") == 1

    def test_self_send_costs_nothing(self):
        sim = make_sim()
        got = []
        sim.mss(0).register_handler("test.ping", got.append)
        sim.network.send_fixed(fixed_msg("mss-0", "mss-0"))
        sim.drain()
        assert len(got) == 1
        assert sim.metrics.total(Category.FIXED) == 0

    def test_fifo_under_random_latency(self):
        import repro
        sim = repro.Simulation(
            n_mss=2,
            n_mh=0,
            seed=5,
            config=NetworkConfig(fixed_latency=UniformLatency(0.1, 10.0)),
        )
        got = []
        sim.mss(1).register_handler(
            "test.seq", lambda m: got.append(m.payload)
        )
        for i in range(50):
            sim.network.send_fixed(
                fixed_msg("mss-0", "mss-1", kind="test.seq", payload=i)
            )
        sim.drain()
        assert got == list(range(50))


class TestWirelessCell:
    def test_downlink_delivery_to_local_mh(self):
        sim = make_sim()
        got = []
        mh = sim.mh(0)  # round robin: mh-0 in mss-0
        mh.register_handler("test.down", got.append)
        sim.network.send_wireless_down(
            "mss-0", "mh-0", fixed_msg("mss-0", "mh-0", kind="test.down")
        )
        sim.drain()
        assert len(got) == 1
        assert sim.metrics.total(Category.WIRELESS, "test") == 1
        assert sim.metrics.energy("mh-0") == 1

    def test_downlink_to_non_local_mh_rejected(self):
        sim = make_sim()
        with pytest.raises(NotConnectedError):
            sim.network.send_wireless_down(
                "mss-0", "mh-1",
                fixed_msg("mss-0", "mh-1", kind="test.down"),
            )

    def test_uplink_delivery(self):
        sim = make_sim()
        got = []
        sim.mss(0).register_handler("test.up", got.append)
        sim.mh(0).send_to_mss("test.up", "hello", "test")
        sim.drain()
        assert got[0].payload == "hello"
        assert sim.metrics.energy("mh-0") == 1

    def test_uplink_requires_connection(self):
        sim = make_sim()
        sim.mh(0).move_to("mss-1")  # now in transit
        with pytest.raises(NotConnectedError):
            sim.mh(0).send_to_mss("test.up", None, "test")
        sim.drain()

    def test_downlink_prefix_loss_on_leave(self):
        # Send a burst of downlink messages, then have the MH leave
        # while some are in flight: it must receive a strict prefix and
        # the leave(r) must carry the last received sequence number.
        sim = make_sim()
        received = []
        mh = sim.mh(0)
        mh.register_handler("test.burst", lambda m: received.append(
            m.payload))
        for i in range(10):
            sim.network.send_wireless_down(
                "mss-0", "mh-0",
                fixed_msg("mss-0", "mh-0", kind="test.burst", payload=i),
            )
        # Leave before any delivery completes (wireless latency 0.5).
        mh.move_to("mss-1")
        sim.drain()
        assert received == []
        assert sim.network.lost_wireless_messages == 10

    def test_downlink_seq_numbers_reported_in_leave(self):
        sim = make_sim()
        mh = sim.mh(0)
        mh.register_handler("test.one", lambda m: None)
        sim.network.send_wireless_down(
            "mss-0", "mh-0", fixed_msg("mss-0", "mh-0", kind="test.one")
        )
        sim.drain()
        assert mh.last_received_seq == 1
        mh.move_to("mss-1")
        sim.drain()
        # Sequence resets in the new cell.
        assert mh.last_received_seq == 0


class TestSendToMh:
    def test_local_delivery_needs_no_search(self):
        sim = make_sim()
        got = []
        sim.mh(0).register_handler("test.msg", got.append)
        sim.network.send_to_mh(
            "mss-0", "mh-0", fixed_msg("mss-0", "mh-0", kind="test.msg")
        )
        sim.drain()
        assert len(got) == 1
        assert sim.metrics.total(Category.SEARCH) == 0

    def test_remote_delivery_incurs_one_search(self):
        sim = make_sim()
        got = []
        sim.mh(1).register_handler("test.msg", got.append)  # in mss-1
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg")
        )
        sim.drain()
        assert len(got) == 1
        assert sim.metrics.total(Category.SEARCH, "test") == 1

    def test_delivery_survives_move_during_flight(self):
        sim = make_sim()
        got = []
        sim.mh(1).register_handler("test.msg", got.append)
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg")
        )
        sim.mh(1).move_to("mss-3")
        sim.drain()
        assert len(got) == 1

    def test_delivery_to_mh_in_transit_waits_for_join(self):
        sim = make_sim()
        got = []
        sim.mh(1).register_handler("test.msg", got.append)
        sim.mh(1).move_to("mss-2")
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg")
        )
        sim.drain()
        assert len(got) == 1
        assert sim.mh(1).current_mss_id == "mss-2"

    def test_disconnected_mh_reports_status(self):
        sim = make_sim()
        outcomes = []
        sim.mh(1).register_handler("test.msg", lambda m: None)
        sim.mh(1).disconnect()
        sim.drain()
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg"),
            on_disconnected=outcomes.append,
        )
        sim.drain()
        assert len(outcomes) == 1
        assert outcomes[0].disconnected
        assert outcomes[0].mss_id == "mss-1"
        # The notification from the disconnect-cell MSS is one fixed msg.
        assert sim.metrics.total(Category.FIXED, "test") == 1

    def test_on_delivered_callback_fires(self):
        sim = make_sim()
        delivered = []
        sim.mh(1).register_handler("test.msg", lambda m: None)
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg"),
            on_delivered=delivered.append,
        )
        sim.drain()
        assert len(delivered) == 1


class TestSearchProtocols:
    def test_broadcast_search_counts_probes(self):
        sim = make_sim(search="broadcast")
        got = []
        sim.mh(1).register_handler("test.msg", got.append)
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg")
        )
        sim.drain()
        assert len(got) == 1
        # M-1 queries + 1 reply + 1 forward = M+1 probe messages.
        assert sim.metrics.total(Category.SEARCH_PROBE, "test") == 5
        assert sim.metrics.total(Category.SEARCH) == 0

    def test_home_agent_search_constant_probes(self):
        sim = make_sim(search="home-agent")
        got = []
        sim.mh(1).register_handler("test.msg", got.append)
        sim.network.send_to_mh(
            "mss-0", "mh-1", fixed_msg("mss-0", "mh-1", kind="test.msg")
        )
        sim.drain()
        assert len(got) == 1
        # query + reply + forward = 3, independent of M.
        assert sim.metrics.total(Category.SEARCH_PROBE, "test") == 3

    def test_home_agent_maintenance_traffic_on_moves(self):
        sim = make_sim(search="home-agent")
        before = sim.metrics.total(Category.FIXED, "search-maintenance")
        sim.mh(0).move_to("mss-2")
        sim.drain()
        after = sim.metrics.total(Category.FIXED, "search-maintenance")
        assert after >= before  # updates unless mss-2 is the home
