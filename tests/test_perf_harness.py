"""Tests for the perf harness (registry, measurement, comparisons)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    SCENARIOS,
    Scenario,
    check_regressions,
    compare,
    delta_table,
    find_previous_bench,
    load_bench,
    run_scenario,
    scenario_names,
    write_bench,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_has_headline_and_smoke_scenarios():
    assert "scale_m10_n200" in SCENARIOS
    smoke = scenario_names(smoke_only=True)
    assert smoke
    assert all(SCENARIOS[name].smoke for name in smoke)
    assert set(smoke) < set(scenario_names())


def test_registry_descriptions_are_nonempty():
    for scenario in SCENARIOS.values():
        assert scenario.description
        assert callable(scenario.run)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def test_run_scenario_measures_and_repeats():
    calls = []
    scenario = Scenario(
        name="tiny",
        description="deterministic toy",
        run=lambda: calls.append(1) or 42,
    )
    result = run_scenario(scenario, repeats=3)
    assert len(calls) == 3
    assert result.events == 42
    assert result.wall_time_s > 0
    assert result.events_per_sec > 0
    assert result.repeats == 3


def test_run_scenario_rejects_nondeterminism():
    counter = [0]

    def drifting():
        counter[0] += 1
        return counter[0]

    scenario = Scenario(name="drift", description="x", run=drifting)
    with pytest.raises(ConfigurationError, match="nondeterministic"):
        run_scenario(scenario, repeats=2)


def test_run_scenario_rejects_bad_repeats():
    scenario = Scenario(name="t", description="x", run=lambda: 1)
    with pytest.raises(ConfigurationError):
        run_scenario(scenario, repeats=0)


def test_unknown_scenario_name_raises():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        run_scenario("no_such_scenario")


# ----------------------------------------------------------------------
# Records on disk
# ----------------------------------------------------------------------

def _record(calibration, eps_by_name):
    return {
        "schema": 1,
        "calibration_ops_per_sec": calibration,
        "scenarios": {
            name: {"events_per_sec": eps, "events": 100,
                   "wall_time_s": 100 / eps, "peak_rss_kb": None,
                   "repeats": 1}
            for name, eps in eps_by_name.items()
        },
    }


def test_write_load_roundtrip(tmp_path):
    record = _record(1e6, {"a": 5000.0})
    path = str(tmp_path / "BENCH_9.json")
    write_bench(record, path)
    assert load_bench(path) == record


def test_load_rejects_wrong_schema(tmp_path):
    path = str(tmp_path / "BENCH_1.json")
    write_bench({"schema": 999, "scenarios": {}}, path)
    with pytest.raises(ConfigurationError, match="schema"):
        load_bench(path)


def test_find_previous_bench_picks_highest(tmp_path):
    assert find_previous_bench(str(tmp_path)) is None
    for n in (2, 10, 4):
        write_bench(_record(1.0, {}), str(tmp_path / f"BENCH_{n}.json"))
    (tmp_path / "BENCH_bogus.json").write_text("{}")
    found = find_previous_bench(str(tmp_path))
    assert found is not None
    assert os.path.basename(found) == "BENCH_10.json"


def test_checked_in_bench_is_loadable_and_improved():
    path = os.path.join(REPO_ROOT, "BENCH_4.json")
    record = load_bench(path)
    headline = record["scenarios"]["scale_m10_n200"]
    assert headline["events"] > 0
    # The record embeds its pre-optimization baseline; the headline
    # scenario must show the >=25% speedup the optimization targeted.
    speedup = record["baseline"]["speedup"]["scale_m10_n200"]
    assert speedup["raw_ratio"] >= 1.25


# ----------------------------------------------------------------------
# Comparison math and the regression gate
# ----------------------------------------------------------------------

def test_compare_raw_and_normalized_ratios():
    baseline = _record(1e6, {"a": 1000.0, "only_base": 5.0})
    # Same machine speed -> normalized tracks raw.
    current = _record(1e6, {"a": 1500.0, "only_cur": 7.0})
    (delta,) = compare(current, baseline)
    assert delta.name == "a"
    assert delta.raw_ratio == pytest.approx(1.5)
    assert delta.normalized_ratio == pytest.approx(1.5)
    assert delta.raw_pct == pytest.approx(50.0)


def test_compare_normalizes_out_machine_speed():
    baseline = _record(1e6, {"a": 1000.0})
    # A machine twice as fast doubles both the calibration and the
    # scenario: normalized says "no change", raw says "2x".
    current = _record(2e6, {"a": 2000.0})
    (delta,) = compare(current, baseline)
    assert delta.raw_ratio == pytest.approx(2.0)
    assert delta.normalized_ratio == pytest.approx(1.0)


def test_check_regressions_flags_slowdowns():
    baseline = _record(1e6, {"fast": 1000.0, "slow": 1000.0})
    current = _record(1e6, {"fast": 990.0, "slow": 600.0})
    deltas = compare(current, baseline)
    failures = check_regressions(deltas, max_regression=0.30)
    assert len(failures) == 1
    assert "slow" in failures[0]
    assert not check_regressions(deltas, max_regression=0.50)


def test_check_regressions_validates_tolerance():
    with pytest.raises(ConfigurationError):
        check_regressions([], max_regression=1.5)


def test_delta_table_renders_all_rows():
    baseline = _record(1e6, {"a": 1000.0, "b": 2000.0})
    current = _record(1e6, {"a": 1100.0, "b": 1500.0})
    table = delta_table(compare(current, baseline))
    assert "a" in table and "b" in table
    assert "+10.0%" in table
    assert "-25.0%" in table


# ----------------------------------------------------------------------
# CLI wrapper
# ----------------------------------------------------------------------

def test_tool_lists_scenarios():
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "perf_harness.py"),
         "--list"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0
    for name in SCENARIOS:
        assert name in result.stdout


def test_compare_schedulers_identity_gate_passes():
    """tools/compare_schedulers.py (the CI perf-compare job's identity
    half): every canonical scenario and the pack at seed 7 must digest
    identically under both schedulers."""
    result = subprocess.run(
        [sys.executable,
         os.path.join(REPO_ROOT, "tools", "compare_schedulers.py"),
         "--skip-perf"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "canonical scenarios: OK" in result.stdout
    assert "chaos pack (seed 7): OK" in result.stdout
