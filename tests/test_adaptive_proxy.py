"""Tests for the adaptive proxy policy (Section 5's future work)."""

from __future__ import annotations

import pytest

from repro import Category
from repro.errors import ConfigurationError
from repro.proxy import AdaptiveProxyPolicy, ProxiedMessenger, ProxyManager

from conftest import make_sim


def build(demote=2, promote=2, n_mss=6, n_mh=4):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh)
    policy = AdaptiveProxyPolicy(
        demote_after_moves=demote, promote_after_uses=promote
    )
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    messenger = ProxiedMessenger(manager)
    return sim, policy, manager, messenger


def test_starts_tracked_at_home_mss():
    sim, policy, manager, messenger = build()
    for i in range(4):
        assert policy.tracked[f"mh-{i}"]
        assert policy.proxy_of(f"mh-{i}") == f"mss-{i}"


def test_tracked_moves_generate_informs():
    sim, policy, manager, messenger = build(demote=5)
    sim.mh(1).move_to("mss-4")
    sim.drain()
    assert policy.inform_messages == 1
    assert policy.location_register["mh-1"] == "mss-4"


def test_frequent_mover_is_demoted_to_local():
    sim, policy, manager, messenger = build(demote=2)
    sim.mh(1).move_to("mss-4")
    sim.drain()
    assert policy.tracked["mh-1"]
    sim.mh(1).move_to("mss-5")
    sim.drain()
    assert not policy.tracked["mh-1"]
    assert policy.demotions == 1
    # Further moves cost no informs.
    informs = policy.inform_messages
    sim.mh(1).move_to("mss-2")
    sim.drain()
    assert policy.inform_messages == informs


def test_demoted_mh_is_still_reachable_via_search():
    sim, policy, manager, messenger = build(demote=1)
    sim.mh(1).move_to("mss-4")
    sim.drain()
    assert not policy.tracked["mh-1"]
    before = sim.metrics.snapshot()
    messenger.send("mh-0", "mh-1", "find-me")
    sim.drain()
    delta = sim.metrics.since(before)
    assert messenger.deliveries_of("find-me") == ["mh-1"]
    assert delta.total(Category.SEARCH, "proxy") == 1


def test_stable_mh_is_promoted_back_to_tracked():
    sim, policy, manager, messenger = build(demote=1, promote=2)
    sim.mh(1).move_to("mss-4")
    sim.drain()
    assert not policy.tracked["mh-1"]
    messenger.send("mh-0", "mh-1", "one")
    sim.drain()
    assert not policy.tracked["mh-1"]
    messenger.send("mh-0", "mh-1", "two")
    sim.drain()
    assert policy.tracked["mh-1"]
    assert policy.promotions == 1
    assert policy.location_register["mh-1"] == "mss-4"
    # Tracked again: the next delivery needs no search.
    before = sim.metrics.snapshot()
    messenger.send("mh-0", "mh-1", "three")
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.total(Category.SEARCH, "proxy") == 0
    assert messenger.deliveries_of("three") == ["mh-1"]


def test_move_resets_use_streak():
    sim, policy, manager, messenger = build(demote=1, promote=3)
    sim.mh(1).move_to("mss-4")
    sim.drain()
    messenger.send("mh-0", "mh-1", "a")
    sim.drain()
    messenger.send("mh-0", "mh-1", "b")
    sim.drain()
    sim.mh(1).move_to("mss-5")  # breaks the streak
    sim.drain()
    messenger.send("mh-0", "mh-1", "c")
    sim.drain()
    assert not policy.tracked["mh-1"]


def test_uplink_routing_follows_mode():
    sim, policy, manager, messenger = build(demote=1)
    # Tracked: uplink from a remote cell relays to the home proxy.
    assert policy.proxy_for_uplink("mh-0", "mss-3") == "mss-0"
    sim.mh(0).move_to("mss-3")
    sim.drain()
    # Demoted after one move: the receiving MSS is the proxy.
    assert policy.proxy_for_uplink("mh-0", "mss-3") == "mss-3"


def test_invalid_thresholds_rejected():
    with pytest.raises(ConfigurationError):
        AdaptiveProxyPolicy(demote_after_moves=0)
    with pytest.raises(ConfigurationError):
        AdaptiveProxyPolicy(promote_after_uses=0)


def test_messenger_works_across_mixed_modes():
    sim, policy, manager, messenger = build(demote=1)
    # Demote mh-2; keep mh-3 tracked.
    sim.mh(2).move_to("mss-5")
    sim.drain()
    messenger.send("mh-3", "mh-2", "to-local")
    messenger.send("mh-2", "mh-3", "to-tracked")
    sim.drain()
    assert messenger.deliveries_of("to-local") == ["mh-2"]
    assert messenger.deliveries_of("to-tracked") == ["mh-3"]
