"""Unit tests for periodic and Poisson processes."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim import PeriodicProcess, PoissonProcess, Scheduler


def test_periodic_fires_at_fixed_interval():
    sched = Scheduler()
    times = []
    PeriodicProcess(sched, 2.0, lambda: times.append(sched.now),
                    max_firings=4)
    sched.drain()
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_periodic_start_after_overrides_first_firing():
    sched = Scheduler()
    times = []
    PeriodicProcess(sched, 5.0, lambda: times.append(sched.now),
                    start_after=1.0, max_firings=2)
    sched.drain()
    assert times == [1.0, 6.0]


def test_periodic_stop_prevents_future_firings():
    sched = Scheduler()
    count = [0]

    def action():
        count[0] += 1
        if count[0] == 2:
            proc.stop()

    proc = PeriodicProcess(sched, 1.0, action)
    sched.drain()
    assert count[0] == 2


def test_periodic_rejects_nonpositive_interval():
    with pytest.raises(ConfigurationError):
        PeriodicProcess(Scheduler(), 0.0, lambda: None)


def test_poisson_firing_count_close_to_rate():
    sched = Scheduler()
    count = [0]
    proc = PoissonProcess(sched, rate=2.0,
                          action=lambda: count[0] + 1,
                          rng=random.Random(3))

    def bump():
        count[0] += 1

    proc._action = bump
    sched.run(until=1000.0)
    proc.stop()
    # Expect about 2000 firings; allow generous tolerance.
    assert 1700 < count[0] < 2300


def test_poisson_max_firings():
    sched = Scheduler()
    count = [0]

    def bump():
        count[0] += 1

    PoissonProcess(sched, rate=1.0, action=bump,
                   rng=random.Random(1), max_firings=5)
    sched.drain()
    assert count[0] == 5


def test_poisson_is_deterministic_for_a_seed():
    def run(seed):
        sched = Scheduler()
        times = []
        PoissonProcess(sched, rate=1.0,
                       action=lambda: times.append(sched.now),
                       rng=random.Random(seed), max_firings=10)
        sched.drain()
        return times

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ConfigurationError):
        PoissonProcess(Scheduler(), 0.0, lambda: None, random.Random(1))


def test_poisson_stop_cancels_pending():
    sched = Scheduler()
    proc = PoissonProcess(sched, 1.0, lambda: None, random.Random(1))
    proc.stop()
    assert sched.drain() == 0
