"""Unit tests for the generic Lamport mutual exclusion substrate.

These tests run the substrate over a synchronous in-memory transport
(no simulator), exercising the algorithm logic in isolation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.mutex.lamport_core import LamportMutexNode, MutexTransport


class LoopbackNet:
    """A FIFO message bus connecting Lamport nodes directly."""

    def __init__(self):
        self.nodes: Dict[str, LamportMutexNode] = {}
        self.queue = deque()
        self.delivered = 0

    def send(self, src, dst, kind, payload):
        self.queue.append((dst, kind, payload))

    def pump(self):
        while self.queue:
            dst, kind, payload = self.queue.popleft()
            node = self.nodes[dst]
            if kind.endswith(".request"):
                node.on_request(payload)
            elif kind.endswith(".reply"):
                node.on_reply(payload)
            elif kind.endswith(".release"):
                node.on_release(payload)
            self.delivered += 1


class LoopbackTransport(MutexTransport):
    def __init__(self, net: LoopbackNet, node_id: str, all_ids: List[str]):
        self.net = net
        self.node_id = node_id
        self.all_ids = all_ids

    def peers(self):
        return [n for n in self.all_ids if n != self.node_id]

    def send(self, dst, kind, payload):
        self.net.send(self.node_id, dst, kind, payload)


def build(n: int):
    net = LoopbackNet()
    ids = [f"n{i}" for i in range(n)]
    grants: List[str] = []
    for node_id in ids:
        node = LamportMutexNode(
            node_id=node_id,
            transport=LoopbackTransport(net, node_id, ids),
            kind_prefix="lam",
            on_granted=lambda tag, nid=node_id: grants.append(nid),
        )
        net.nodes[node_id] = node
    return net, ids, grants


def test_single_request_granted_after_replies():
    net, ids, grants = build(3)
    net.nodes["n0"].request("t")
    assert grants == []  # needs replies first
    net.pump()
    assert grants == ["n0"]


def test_held_request_blocks_others():
    net, ids, grants = build(3)
    net.nodes["n0"].request("a")
    net.pump()
    net.nodes["n1"].request("b")
    net.pump()
    assert grants == ["n0"]  # n1 waits for n0's release
    net.nodes["n0"].release("a")
    net.pump()
    assert grants == ["n0", "n1"]


def test_grants_follow_timestamp_order():
    net, ids, grants = build(4)
    # All request before any message is delivered: timestamps tie on
    # counter and break by node id.
    for node_id in reversed(ids):
        net.nodes[node_id].request("t")
    net.pump()
    order = []
    # Release in grant order until all four have been served.
    while len(order) < 4:
        assert grants[len(order):], "no progress"
        current = grants[len(order)]
        order.append(current)
        net.nodes[current].release("t")
        net.pump()
    assert order == sorted(ids)


def test_message_count_is_three_n_minus_one():
    net, ids, grants = build(5)
    net.nodes["n2"].request("t")
    net.pump()
    net.nodes["n2"].release("t")
    net.pump()
    # request x4, reply x4, release x4.
    assert net.delivered == 3 * (len(ids) - 1)


def test_multiple_tags_from_one_node_serialize():
    net, ids, grants = build(3)
    net.nodes["n0"].request("first")
    net.nodes["n0"].request("second")
    net.pump()
    node = net.nodes["n0"]
    assert node.held_tags() == ["first"]
    assert node.pending_tags() == ["second"]
    node.release("first")
    net.pump()
    assert node.held_tags() == ["second"]


def test_duplicate_tag_rejected():
    net, ids, grants = build(2)
    net.nodes["n0"].request("t")
    with pytest.raises(ProtocolError):
        net.nodes["n0"].request("t")


def test_release_without_hold_rejected():
    net, ids, grants = build(2)
    with pytest.raises(ProtocolError):
        net.nodes["n0"].release("t")


def test_abort_pending_request_unblocks_peers():
    net, ids, grants = build(3)
    net.nodes["n0"].request("a")   # earliest timestamp
    net.nodes["n1"].request("b")
    net.pump()
    assert grants == ["n0"]
    # n0 aborts while holding: equivalent to release.
    net.nodes["n0"].abort("a")
    net.pump()
    assert grants == ["n0", "n1"]


def test_abort_of_unknown_tag_is_noop():
    net, ids, grants = build(2)
    net.nodes["n0"].abort("nothing")
    assert grants == []


def test_queue_drains_after_releases():
    net, ids, grants = build(3)
    net.nodes["n0"].request("t")
    net.pump()
    net.nodes["n0"].release("t")
    net.pump()
    for node in net.nodes.values():
        assert node.queue_size == 0


@settings(deadline=None, max_examples=40)
@given(
    requests=st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=12
    )
)
def test_property_safety_and_liveness_under_any_request_order(requests):
    """Any interleaving of requests is granted one at a time and every
    request is eventually granted (with immediate release)."""
    net, ids, grants = build(5)
    active = {nid: False for nid in ids}
    expected = 0
    for req in requests:
        node_id = ids[req]
        if active[node_id]:
            continue
        active[node_id] = True
        expected += 1
        net.nodes[node_id].request("t")
        net.pump()
    # Serve until everything granted: at every point at most one holder.
    served = 0
    while served < expected:
        assert len(grants) > served, "liveness violated"
        holder = grants[served]
        holders_now = [
            nid for nid in ids if net.nodes[nid].held_tags()
        ]
        assert holders_now == [holder]
        net.nodes[holder].release("t")
        active[holder] = False
        served += 1
        net.pump()
    assert len(grants) == expected
