"""Edge-case tests for the trickier protocol branches."""

from __future__ import annotations

import pytest

from repro import (
    Category,
    CriticalResource,
    L2Mutex,
    R2Mutex,
)
from repro.groups import LocationViewGroup
from repro.multicast import ExactlyOnceMulticast

from conftest import make_sim


class TestL2Edges:
    def test_two_inits_at_same_mss_interleave_correctly(self):
        sim = make_sim(n_mss=3, n_mh=4, placement="single_cell")
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource, cs_duration=0.5)
        mutex.request("mh-0")
        mutex.request("mh-1")
        mutex.request("mh-2")
        sim.drain()
        assert resource.access_count == 3
        resource.assert_no_overlap()
        # Grants at one MSS still follow the init order.
        assert resource.holders_in_order() == ["mh-0", "mh-1", "mh-2"]

    def test_grant_to_mh_in_transit_waits(self):
        sim = make_sim(n_mss=4, n_mh=4, transit_time=20.0)
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource)
        mutex.request("mh-0")
        sim.run(until=0.6)  # init has arrived; Lamport is running
        sim.mh(0).move_to("mss-2")  # long transit
        sim.drain()
        assert resource.access_count == 1
        assert [m for _, m in mutex.completed] == ["mh-0"]

    def test_release_relay_from_third_cell(self):
        sim = make_sim(n_mss=5, n_mh=5)
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource, cs_duration=5.0)
        mutex.request("mh-0")
        while resource.holder != "mh-0":
            assert sim.scheduler.step()
        # Move twice while holding: the release is relayed from the
        # final cell, not the grant cell.
        sim.mh(0).move_to("mss-2")
        sim.drain()
        sim.mh(0).move_to("mss-3")
        sim.drain()
        assert [m for _, m in mutex.completed] == ["mh-0"]

    def test_request_after_release_same_mh(self):
        sim = make_sim(n_mss=3, n_mh=3)
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource)
        mutex.request("mh-0")
        sim.drain()
        mutex.request("mh-0")
        sim.drain()
        assert resource.holders_in_order() == ["mh-0", "mh-0"]


class TestR2Edges:
    def test_request_arriving_while_token_held_waits_one_traversal(self):
        sim = make_sim(n_mss=3, n_mh=3, placement="single_cell")
        resource = CriticalResource(sim.scheduler)
        mutex = R2Mutex(sim.network, resource, max_traversals=2,
                        cs_duration=3.0)
        mutex.request("mh-0")
        sim.drain()
        mutex.start()
        # While mh-0 holds the region (token out at the MH), mh-1
        # requests at the same MSS: it must wait for the next traversal.
        sim.run(until=1.0)
        assert resource.holder == "mh-0"
        mutex.request("mh-1")
        sim.drain()
        assert resource.holders_in_order() == ["mh-0", "mh-1"]

    def test_empty_ring_traversals_are_cheap_and_finite(self):
        sim = make_sim(n_mss=4, n_mh=0)
        resource = CriticalResource(sim.scheduler)
        mutex = R2Mutex(sim.network, resource, max_traversals=5)
        mutex.start()
        sim.drain()
        assert mutex.finished
        assert sim.metrics.total(Category.FIXED, "R2") == 4 * 5

    def test_return_from_same_cell_costs_no_fixed_hop(self):
        sim = make_sim(n_mss=3, n_mh=3)
        resource = CriticalResource(sim.scheduler)
        mutex = R2Mutex(sim.network, resource, max_traversals=1)
        before = sim.metrics.snapshot()
        mutex.request("mh-1")  # stays at mss-1
        sim.drain()
        mutex.start()
        sim.drain()
        delta = sim.metrics.since(before)
        # request (C_w) + grant (C_w, local) + return (C_w, local)
        # + 3 token hops: no search, 3 fixed.
        assert delta.total(Category.SEARCH, "R2") == 0
        assert delta.total(Category.FIXED, "R2") == 3
        assert delta.total(Category.WIRELESS, "R2") == 3


class TestLocationViewEdges:
    def test_sender_mss_outside_view_delivers_locally_only(self):
        # A member that just arrived in a fresh cell sends before the
        # coordinator update lands: its MSS has no view copy yet.
        sim = make_sim(n_mss=6, n_mh=3, placement="round_robin",
                       transit_time=0.1)
        group = LocationViewGroup(sim.network, sim.mh_ids)
        sim.mh(0).move_to("mss-5")
        # No drain: the view update is still in flight when mh-0 sends.
        sim.run(until=0.5)
        assert sim.mh(0).current_mss_id == "mss-5"
        group.send("mh-0", "early")
        sim.drain()
        # Conservation holds regardless of what the race delivered.
        expected = group.stats.messages * 2
        assert group.stats.deliveries + group.stats.missed == expected

    def test_stale_incremental_to_departed_mss_is_ignored(self):
        sim = make_sim(n_mss=6, n_mh=3, placement="round_robin")
        group = LocationViewGroup(sim.network, sim.mh_ids)
        # mss-2 leaves the view when its only member departs...
        sim.mh(2).move_to("mss-4")
        sim.drain()
        assert "mss-2" not in group.view_copies
        # ...and a later unrelated update must not resurrect its copy.
        sim.mh(1).move_to("mss-5")
        sim.drain()
        assert "mss-2" not in group.view_copies

    def test_coordinator_cell_hosts_members(self):
        sim = make_sim(n_mss=4, n_mh=4, placement="single_cell")
        group = LocationViewGroup(sim.network, sim.mh_ids,
                                  coordinator_mss_id="mss-0")
        assert group.coordinator_view() == {"mss-0"}
        group.send("mh-0", "from-coordinator-cell")
        sim.drain()
        assert len(group.deliveries_of("from-coordinator-cell")) == 3
        # The only member cell moves away entirely.
        for i in range(4):
            sim.mh(i).move_to("mss-2")
            sim.drain()
        assert group.coordinator_view() == {"mss-2"}
        # The coordinator keeps its (authoritative) copy.
        assert "mss-0" in group.view_copies


class TestMulticastEdges:
    def test_submit_from_sequencer_cell_skips_relay(self):
        sim = make_sim(n_mss=4, n_mh=2, placement="single_cell")
        multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids,
                                         sequencer_mss_id="mss-0")
        before = sim.metrics.snapshot()
        multicast.send("mh-0", "local-submit")
        sim.drain()
        delta = sim.metrics.since(before)
        # Flood to 3 other MSSs + prune broadcast to the same 3 once
        # both members acked (acks themselves are sequencer-local and
        # free).  No submit relay.
        assert delta.total(Category.FIXED, "eom") == 6

    def test_unknown_sequencer_rejected(self):
        from repro.errors import ConfigurationError
        sim = make_sim(n_mss=3, n_mh=2)
        with pytest.raises(ConfigurationError):
            ExactlyOnceMulticast(sim.network, sim.mh_ids,
                                 sequencer_mss_id="mss-99")

    def test_single_member_group(self):
        sim = make_sim(n_mss=3, n_mh=1)
        multicast = ExactlyOnceMulticast(sim.network, ["mh-0"])
        multicast.send("mh-0", "solo")
        sim.drain()
        assert multicast.delivered_seqs("mh-0") == [1]
        assert all(
            multicast.buffer_size(m) == 0 for m in sim.mss_ids
        )

    def test_rapid_double_move_state_chases_member(self):
        # The stranded-counter race: two quick moves outrun the first
        # handoff; the counter must chase the member.
        sim = make_sim(n_mss=5, n_mh=2, transit_time=0.1,
                       fixed_latency=5.0, wireless_latency=0.05)
        multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids)
        multicast.send("mh-0", "one")
        sim.drain()
        sim.mh(1).move_to("mss-3")
        sim.run(until=sim.now + 0.3)  # joined; handoff still in flight
        assert sim.mh(1).current_mss_id == "mss-3"
        sim.mh(1).move_to("mss-4")
        sim.drain()
        multicast.send("mh-0", "two")
        sim.drain()
        assert multicast.delivered_seqs("mh-1") == [1, 2]
