"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Scheduler


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "c")
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.drain()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sched = Scheduler()
    fired = []
    for label in "abcde":
        sched.schedule(1.0, fired.append, label)
    sched.drain()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.drain()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_run_until_stops_before_later_events():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(5.0, fired.append, "late")
    sched.run(until=2.0)
    assert fired == ["early"]
    assert sched.now == 2.0
    sched.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    sched = Scheduler()
    sched.run(until=7.0)
    assert sched.now == 7.0


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    event.cancel()
    sched.drain()
    assert fired == []


def test_cancel_is_idempotent():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sched.drain() == 0


def test_events_scheduled_during_run_fire():
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.schedule(1.0, chain, n + 1)

    sched.schedule(0.0, chain, 0)
    sched.drain()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 3.0


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(ConfigurationError):
        sched.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.drain()
    with pytest.raises(ConfigurationError):
        sched.schedule_at(0.5, lambda: None)


def test_max_events_bounds_run():
    sched = Scheduler()
    for _ in range(10):
        sched.schedule(1.0, lambda: None)
    assert sched.run(max_events=4) == 4
    assert sched.pending_count == 6


def test_drain_detects_livelock():
    sched = Scheduler()

    def forever():
        sched.schedule(1.0, forever)

    sched.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sched.drain(max_events=100)


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.drain()
    assert sched.events_processed == 5


def test_step_returns_false_on_empty_queue():
    assert Scheduler().step() is False


def test_scheduler_not_reentrant():
    sched = Scheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SimulationError as exc:
            errors.append(exc)

    sched.schedule(1.0, reenter)
    sched.drain()
    assert len(errors) == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=50))
def test_property_firing_times_are_sorted(delays):
    sched = Scheduler()
    times = []
    for delay in delays:
        sched.schedule(delay, lambda: times.append(sched.now))
    sched.drain()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.integers()), max_size=40))
def test_property_ties_break_by_insertion_order(items):
    sched = Scheduler()
    fired = []
    for delay, tag in items:
        sched.schedule(delay, fired.append, (delay, tag))
    sched.drain()
    # Stable sort of the insertion sequence by delay equals firing order.
    expected = sorted(items, key=lambda pair: pair[0])
    assert fired == expected


# ----------------------------------------------------------------------
# Lazy cancellation and heap compaction
# ----------------------------------------------------------------------

def test_pending_count_exact_under_cancellation():
    sched = Scheduler()
    events = [sched.schedule(float(i), lambda: None) for i in range(100)]
    assert sched.pending_count == 100
    for event in events[::2]:
        event.cancel()
    assert sched.pending_count == 50
    # Cancelling twice changes nothing.
    events[0].cancel()
    assert sched.pending_count == 50
    sched.drain()
    assert sched.pending_count == 0
    assert sched.events_processed == 50


def test_compaction_shrinks_heap_under_heavy_cancellation():
    sched = Scheduler()
    events = [sched.schedule(float(i), lambda: None) for i in range(1000)]
    for event in events[:900]:
        event.cancel()
    # Cancelled entries outnumbered live ones long ago, so the heap
    # must have been compacted well below the 1000 pushed entries.
    assert len(sched._heap) < 500
    assert sched.pending_count == 100
    sched.drain()
    assert sched.events_processed == 100


def test_cancel_after_fire_is_harmless():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    live = sched.schedule(2.0, lambda: None)
    sched.step()
    # The event already fired; a late cancel must not skew the
    # pending-count bookkeeping of the entries still in the heap.
    event.cancel()
    assert sched.pending_count == 1
    sched.drain()
    assert sched.events_processed == 2
    assert not live.cancelled


def test_cancel_during_run_skips_event():
    sched = Scheduler()
    fired = []
    victim = sched.schedule(2.0, fired.append, "victim")
    sched.schedule(1.0, victim.cancel)
    sched.schedule(3.0, fired.append, "survivor")
    sched.drain()
    assert fired == ["survivor"]


def test_compaction_during_run_preserves_order():
    # A callback cancels enough future events to trigger in-place
    # compaction while run() holds an alias of the heap; the remaining
    # events must still fire in order.
    sched = Scheduler()
    fired = []
    victims = [
        sched.schedule(10.0 + i * 0.25, fired.append, ("victim", i))
        for i in range(500)
    ]

    def massacre():
        for event in victims:
            event.cancel()

    sched.schedule(1.0, massacre)
    keepers = [5.0, 12.0, 400.0]
    for t in keepers:
        sched.schedule(t, fired.append, ("keeper", t))
    sched.drain()
    assert fired == [("keeper", t) for t in keepers]


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                          st.booleans()), max_size=60))
def test_property_order_survives_random_cancels(items):
    sched = Scheduler()
    fired = []
    events = []
    for delay, _ in items:
        events.append(sched.schedule(delay, fired.append, delay))
    for event, (_, cancel) in zip(events, items):
        if cancel:
            event.cancel()
    sched.drain()
    # Stable sort of the survivors by delay equals firing order.
    expected = [d for d, _ in sorted(
        [(d, i) for i, (d, c) in enumerate(items) if not c],
        key=lambda pair: (pair[0], pair[1]),
    )]
    assert fired == expected
    assert sched.pending_count == 0
