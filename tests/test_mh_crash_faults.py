"""MH crash/recovery faults: the plan, the injector, and the hardened
protocols (L1, R1, search, proxy) that must survive them.

The chaos-matrix acceptance runs live in ``test_mh_crash_chaos.py``;
the recovery subsystem's own tests in ``test_recovery.py``.  This file
covers the fault layer itself: validation and serialization of
``MhCrash``, the injector's crash/recover mechanics (silent detach,
vouching cell, amnesia, listener isolation), and the per-algorithm
crash tolerance that keeps a dead host from wedging the survivors.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    CriticalResource,
    FaultPlan,
    L1Mutex,
    MhCrash,
    MssCrash,
    R1Mutex,
    Simulation,
)
from repro.errors import ConfigurationError
from repro.hosts import HostState
from repro.net import ConstantLatency, NetworkConfig
from repro.net.messages import Message
from repro.proxy import FixedProxyPolicy, ProxiedMessenger, ProxyManager


def fault_sim(plan, n_mss=3, n_mh=3, seed=1, **kwargs):
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    return Simulation(
        n_mss=n_mss, n_mh=n_mh, seed=seed, config=config,
        fault_plan=plan, **kwargs,
    )


def mh_plan(*crashes, **kwargs):
    return FaultPlan(mh_crashes=tuple(crashes), seed=1, **kwargs)


class TestMhCrashPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            crashes=(MssCrash("mss-1", at=5.0, recover_at=30.0),),
            mh_crashes=(
                MhCrash("mh-0", at=10.0, recover_at=25.0),
                MhCrash("mh-1", at=12.0, amnesia=True),
            ),
            seed=9,
        )
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_rejects_recover_before_crash(self):
        with pytest.raises(ConfigurationError):
            MhCrash("mh-0", at=10.0, recover_at=10.0)
        with pytest.raises(ConfigurationError):
            MhCrash("mh-0", at=10.0, recover_at=5.0)
        with pytest.raises(ConfigurationError):
            MhCrash("mh-0", at=-1.0)

    def test_rejects_overlapping_windows_per_host(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(mh_crashes=(
                MhCrash("mh-0", at=10.0, recover_at=30.0),
                MhCrash("mh-0", at=20.0, recover_at=40.0),
            ))
        # A permanent crash overlaps everything after it.
        with pytest.raises(ConfigurationError):
            FaultPlan(mh_crashes=(
                MhCrash("mh-0", at=10.0),
                MhCrash("mh-0", at=50.0, recover_at=60.0),
            ))
        # Disjoint windows for one host, and any windows for distinct
        # hosts, are fine.
        FaultPlan(mh_crashes=(
            MhCrash("mh-0", at=10.0, recover_at=20.0),
            MhCrash("mh-0", at=30.0, recover_at=40.0),
            MhCrash("mh-1", at=12.0, recover_at=35.0),
        ))

    def test_bind_rejects_unknown_mh(self):
        plan = mh_plan(MhCrash("mh-99", at=5.0))
        with pytest.raises(ConfigurationError):
            fault_sim(plan)


class TestMhCrashInjector:
    def test_crash_detaches_silently_and_flags_the_cell(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0))
        sim = fault_sim(plan)
        cell = sim.mh(0).current_mss_id
        sim.run(until=10.0)
        mh = sim.mh(0)
        assert mh.crashed
        assert mh.state is HostState.DISCONNECTED
        assert mh.current_mss_id is None
        # The serving cell noticed the silence (Section 2's flag), even
        # though no disconnect(r) message was ever sent.
        assert "mh-0" in sim.network.mss(cell).disconnected_mhs
        assert sim.metrics.fault_total("mh.crash") == 1

    def test_recovery_reconnects_at_the_crash_cell(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0, recover_at=12.0))
        sim = fault_sim(plan)
        cell = sim.mh(0).current_mss_id
        sim.drain()
        mh = sim.mh(0)
        assert not mh.crashed
        assert mh.is_connected
        assert mh.current_mss_id == cell
        assert sim.metrics.fault_total("mh.recover") == 1

    def test_amnesiac_recovery_forgets_the_previous_cell(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0, recover_at=12.0,
                               amnesia=True))
        sim = fault_sim(plan)
        sim.run(until=10.0)
        # Amnesia wiped the host's memory of where it was attached ...
        assert sim.mh(0).disconnect_mss_id is None
        sim.drain()
        # ... yet the broadcast find_disconnect query still finds its
        # flag and the host comes back connected.
        assert sim.mh(0).is_connected

    def test_crash_mid_transit_flags_the_cell_last_left(self):
        plan = mh_plan(MhCrash("mh-0", at=5.2, recover_at=20.0))
        sim = fault_sim(plan)
        origin = sim.mh(0).current_mss_id
        sim.scheduler.schedule_at(5.0, sim.mh(0).move_to, "mss-1")
        sim.run(until=8.0)
        # The crash hit between leave(origin) and join(mss-1): the
        # origin cell vouches for the host; the join died with it.
        assert sim.mh(0).crashed
        assert "mh-0" in sim.network.mss(origin).disconnected_mhs
        sim.drain()
        assert sim.mh(0).is_connected

    def test_crash_listener_failures_are_isolated(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0, recover_at=12.0))
        sim = fault_sim(plan)
        seen = []

        def bad_listener(mh_id):
            raise RuntimeError("protocol bug")

        sim.fault_injector.add_mh_crash_listener(bad_listener)
        sim.fault_injector.add_mh_crash_listener(seen.append)
        sim.drain()
        # The raising listener was contained and the one registered
        # after it still ran; the failure is a counted fault event.
        assert seen == ["mh-0"]
        assert sim.fault_injector.stats["injector.listener_error"] == 1
        assert sim.metrics.fault_total("injector.listener_error") == 1
        assert sim.mh(0).is_connected  # recovery went ahead regardless

    def test_session_bump_invalidates_in_flight_downlinks(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0, recover_at=12.0))
        sim = fault_sim(plan)
        before = sim.mh(0).session
        sim.drain()
        # crash and reconnect each bump the session, so any downlink
        # addressed to the pre-crash incarnation is unmatchable.
        assert sim.mh(0).session >= before + 2


class TestL1CrashTolerance:
    def test_peers_disclaim_a_crashed_requester(self):
        plan = mh_plan(MhCrash("mh-0", at=2.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = L1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=1.0)
        mutex.request("mh-0")
        mutex.request("mh-1")
        sim.drain()
        # mh-0 died before being served; the survivors purged its queue
        # entries so their queue heads stay reachable.
        assert sim.metrics.fault_total("l1.requests_disclaimed") == 1
        assert mutex.node("mh-1").queue_size == 1  # only mh-1's own entry
        # A *permanently* dead peer still blocks grants -- Lamport needs
        # a later timestamp from every participant, which is exactly the
        # L1 drawback the paper calls out.  The point here is that the
        # system idles (drain returned) instead of retrying forever.
        assert mutex.completed == []
        assert "mh-1" in mutex.node("mh-1").pending_tags()

    def test_recovered_requester_resubmits_and_is_served(self):
        plan = mh_plan(MhCrash("mh-0", at=2.0, recover_at=20.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = L1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=1.0)
        mutex.request("mh-0")
        mutex.request("mh-1")
        sim.drain()
        served = {mh for (_, mh) in mutex.completed}
        assert served == {"mh-0", "mh-1"}
        resource.assert_no_overlap()

    def test_crash_inside_cs_aborts_the_grant(self):
        plan = mh_plan(MhCrash("mh-0", at=6.0, recover_at=25.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = L1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=30.0)
        mutex.request("mh-0")
        mutex.request("mh-1")
        sim.drain()
        # The crash hit mh-0 *inside* the region: the occupancy was
        # aborted and the resource freed rather than held for the full
        # 30-unit duration by a ghost.
        assert sim.metrics.fault_total("l1.grant_aborted_by_crash") == 1
        # mh-0's aborted access is not a completion; mh-1 was parked
        # until the recovery re-announcement let it hear a fresh
        # timestamp from mh-0, then it was served with no extra nudge.
        assert {mh for (_, mh) in mutex.completed} == {"mh-1"}
        # And the amnesiac rejoiner itself can be served afterwards.
        mutex.request("mh-0")
        sim.drain()
        served = {mh for (_, mh) in mutex.completed}
        assert served == {"mh-0", "mh-1"}
        resource.assert_no_overlap()


class TestR1CrashTolerance:
    def test_token_dies_with_holder_and_is_regenerated(self):
        # mh-1 wants the region, receives the token, and crashes while
        # inside: the token is in its (volatile) memory and dies with
        # it.  auto_repair regenerates one at the survivors' ring.
        plan = mh_plan(MhCrash("mh-1", at=8.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=15.0, max_traversals=3,
                        auto_repair=True)
        mutex.want("mh-1")
        mutex.want("mh-2")
        mutex.start()
        sim.drain()
        assert sim.metrics.fault_total("r1.grant_aborted_by_crash") == 1
        assert sim.metrics.fault_total("r1.token_regenerated") == 1
        # The regenerated token still serves the surviving requester.
        assert {mh for (_, mh) in mutex.completed} == {"mh-2"}
        assert mutex.stalled_on is None
        resource.assert_no_overlap()

    def test_without_auto_repair_the_ring_stalls_explicitly(self):
        plan = mh_plan(MhCrash("mh-1", at=8.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=15.0, max_traversals=3)
        mutex.want("mh-1")
        mutex.start()
        sim.drain()
        # Plain R1 has no repair protocol: the loss is surfaced as an
        # explicit stall, never an infinite retry loop (drain returned).
        assert mutex.stalled_on == "mh-1"

    def test_recovered_member_rejoins_the_ring(self):
        plan = mh_plan(MhCrash("mh-1", at=2.0, recover_at=30.0))
        sim = fault_sim(plan)
        resource = CriticalResource(sim.scheduler)
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=1.0, max_traversals=40,
                        auto_repair=True)
        mutex.want("mh-0")
        mutex.start()
        # The rejoiner asks for the region as soon as it is back; the
        # token must come around to it on the re-formed ring.
        sim.scheduler.schedule_at(31.0, mutex.want, "mh-1")
        sim.drain()
        assert sim.metrics.fault_total("r1.member_rejoined") == 1
        assert "mh-1" in {mh for (_, mh) in mutex.completed}
        resource.assert_no_overlap()


class TestSearchAndProxyPurge:
    def test_caching_search_purges_a_crashed_host(self):
        plan = mh_plan(MhCrash("mh-0", at=5.0, recover_at=12.0))
        sim = fault_sim(plan, search="caching")
        sim.mh(0).register_handler("app.ping", lambda m: None)
        sim.network.send_to_mh(
            "mss-1", "mh-0",
            Message(kind="app.ping", src="mss-1", dst="mh-0",
                    payload=1, scope="t"),
        )
        sim.run(until=4.0)
        search = sim.network.search_protocol
        assert any(key[1] == "mh-0" for key in search._cache)
        sim.run(until=6.0)
        # The crash purged every cached pointer at every station.
        assert not any(key[1] == "mh-0" for key in search._cache)
        sim.drain()

    def test_proxy_letter_to_crashed_host_is_missed_not_wedged(self):
        plan = mh_plan(MhCrash("mh-1", at=5.0))
        sim = fault_sim(plan)
        manager = ProxyManager(sim.network, FixedProxyPolicy(),
                               sim.mh_ids)
        messenger = ProxiedMessenger(manager)
        sim.run(until=6.0)
        messenger.send("mh-0", "mh-1", "are you there?")
        # A permanently dead recipient must resolve to a miss; an
        # unbounded retry loop would make this drain never return.
        sim.drain(max_events=50_000)
        assert len(messenger.missed) == 1
        assert len(messenger.delivered) == 0

    def test_proxy_delivers_again_after_recovery(self):
        plan = mh_plan(MhCrash("mh-1", at=5.0, recover_at=15.0))
        sim = fault_sim(plan)
        manager = ProxyManager(sim.network, FixedProxyPolicy(),
                               sim.mh_ids)
        messenger = ProxiedMessenger(manager)
        sim.drain()
        messenger.send("mh-0", "mh-1", "welcome back")
        sim.drain()
        assert len(messenger.delivered) == 1
