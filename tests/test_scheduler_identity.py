"""Byte-identity of the calendar scheduler and the object pools.

The calendar queue, the event/envelope free lists, and the sampled
monitor hub are *performance* features: none of them may change a
single simulated step.  These tests pin that contract the strong way:

* every canonical trace scenario produces the exact same recorded
  event stream (every field of every :class:`TraceEvent`) under the
  heap scheduler, the calendar scheduler, and with pooling disabled;
* every scenario in the certified chaos pack, at every certification
  seed, produces an identical full report (costs, message counts,
  faults, workload stats, monitor verdicts, health snapshot) under
  both schedulers.

If the calendar queue ever reorders a same-(time, seq) tie, or a pool
leaks state between recycled events, a digest here moves and the test
names the first scenario that diverged.
"""

from __future__ import annotations

import hashlib
import json

import pytest

import repro.scenario.runner as runner_mod
import repro.trace.scenarios as trace_scenarios
from repro.facade import Simulation
from repro.scenario import builtin_registry, run_scenario
from repro.trace.scenarios import SCENARIOS

#: the certification seeds the chaos matrix sweeps (see ci.yml).
PACK_SEEDS = (7, 19, 42)

#: constructor overrides exercised against the heap/pooled baseline.
VARIANTS = {
    "calendar": {"scheduler": "calendar"},
    "unpooled": {"pooling": False},
    "calendar-unpooled": {"scheduler": "calendar", "pooling": False},
}


def _patch_simulation(monkeypatch, module, **overrides):
    """Route a module's ``Simulation(...)`` calls through overrides.

    Neither the trace scenarios nor the scenario runner take a
    scheduler parameter (deliberately: scenario specs describe the
    *system*, not the engine), so identity runs inject the engine
    choice at the constructor seam instead.
    """

    def build(*args, **kwargs):
        kwargs.update(overrides)
        return Simulation(*args, **kwargs)

    monkeypatch.setattr(module, "Simulation", build)


def _event_stream_digest(events):
    """SHA-256 over every field of every recorded trace event."""
    h = hashlib.sha256()
    for ev in events:
        h.update(
            json.dumps(
                [
                    ev.id,
                    ev.parent_id,
                    ev.time,
                    ev.etype,
                    ev.scope,
                    ev.category,
                    ev.src,
                    ev.dst,
                    ev.kind,
                    sorted(ev.detail.items()),
                ],
                sort_keys=True,
                default=repr,
            ).encode()
        )
    return h.hexdigest()


def _canonical_run(monkeypatch, name, overrides):
    if overrides:
        _patch_simulation(monkeypatch, trace_scenarios, **overrides)
    run = trace_scenarios.run_scenario(name)
    return (
        len(run.events),
        run.sim.now,
        _event_stream_digest(run.events),
    )


@pytest.mark.parametrize("variant", sorted(VARIANTS), ids=sorted(VARIANTS))
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_canonical_scenarios_are_engine_invariant(
    monkeypatch, name, variant
):
    baseline = _canonical_run(monkeypatch, name, {})
    monkeypatch.undo()
    other = _canonical_run(monkeypatch, name, VARIANTS[variant])
    assert other == baseline, (
        f"{name!r} diverged under {variant}: {other} != {baseline}"
    )


# ---------------------------------------------------------------------------
# The certified chaos pack: full-report identity at every sweep seed
# ---------------------------------------------------------------------------


def _report_digest(spec, seed):
    report = dict(run_scenario(spec, seed=seed).report)
    report.pop("wall_time_s")  # the only nondeterministic field
    return hashlib.sha256(
        json.dumps(report, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_chaos_pack_is_scheduler_invariant(monkeypatch):
    """All 23 certified scenarios x 3 seeds: the calendar scheduler
    reproduces the heap's report byte for byte."""
    registry = builtin_registry()
    names = sorted(registry.names())
    assert len(names) >= 20  # the pack floor; keep the sweep honest
    baseline = {
        (name, seed): _report_digest(registry.get(name), seed)
        for name in names
        for seed in PACK_SEEDS
    }
    _patch_simulation(monkeypatch, runner_mod, scheduler="calendar")
    mismatches = [
        (name, seed)
        for name in names
        for seed in PACK_SEEDS
        if _report_digest(registry.get(name), seed) != baseline[(name, seed)]
    ]
    assert mismatches == []


def test_chaos_pack_is_pooling_invariant(monkeypatch):
    """Spot the pack at one seed with pooling off: recycled event and
    envelope objects must never leak state into the simulation."""
    registry = builtin_registry()
    names = sorted(registry.names())
    baseline = {
        name: _report_digest(registry.get(name), 7) for name in names
    }
    _patch_simulation(
        monkeypatch, runner_mod, scheduler="calendar", pooling=False
    )
    mismatches = [
        name
        for name in names
        if _report_digest(registry.get(name), 7) != baseline[name]
    ]
    assert mismatches == []
