"""Regression: pooled reliable-transport acks must not leak trace ids.

Skipped sampled emits clear ``message.trace_id``, but a pooled ack
recycled from the free list could re-enter the send path still
carrying the trace id stamped on its previous life -- which would
attach the new ack's receive event to the old ack's causality chain.
The pool's reset hook (``_reset_ack``) must zero the field on release.
Part of the observability pipeline's exactness guarantees (ROADMAP
item 3).
"""

from __future__ import annotations

from repro import FaultPlan, Simulation
from repro.net import ConstantLatency, NetworkConfig
from repro.net.reliable import _blank_ack, _reset_ack


class TestResetHook:
    def test_reset_clears_trace_id_and_payload(self):
        ack = _blank_ack()
        ack.payload = object()
        ack.trace_id = 1234
        _reset_ack(ack)
        assert ack.trace_id is None
        assert ack.payload is None


class TestRecycledAcks:
    def _reliable_sim(self, **sim_kwargs):
        config = NetworkConfig(
            fixed_latency=ConstantLatency(1.0),
            wireless_latency=ConstantLatency(0.5),
        )
        return Simulation(n_mss=2, n_mh=0, seed=1, config=config,
                          fault_plan=FaultPlan(), **sim_kwargs)

    def test_recycled_ack_carries_no_stale_trace_id(self):
        """Acks acquired from the free list start every life with
        trace_id=None, even after a traced life stamped one."""
        sim = self._reliable_sim(trace=True)
        sim.mss(0).register_handler("t.data", lambda m: None)
        sim.mss(1).register_handler("t.data", lambda m: None)
        for i in range(8):
            sim.mss(0).send_fixed("mss-1", "t.data", i, "t")
        sim.drain()
        pool = sim.network.reliable._ack_pool
        assert pool.released > 0, "acks never recycled; test is inert"
        # Drain the free list and inspect every recycled ack directly.
        recycled = [pool.acquire() for _ in range(pool.free_count)]
        assert recycled, "free list empty; test is inert"
        for ack in recycled:
            assert ack.trace_id is None
            assert ack.payload is None

    def test_traced_run_matches_untraced_ack_flow(self):
        """Recycling with tracing on must not change the message flow
        (the stale-id bug surfaced as wrong causality, never as
        different traffic)."""
        def run(**kwargs):
            sim = self._reliable_sim(**kwargs)
            seen = []
            sim.mss(1).register_handler(
                "t.data", lambda m: seen.append(m.payload))
            for i in range(8):
                sim.mss(0).send_fixed("mss-1", "t.data", i, "t")
            sim.drain()
            return seen, sim.metrics.report(sim.cost_model)["totals"]

        untraced = run()
        traced = run(trace=True)
        assert untraced == traced
