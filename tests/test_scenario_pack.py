"""Certification of the shipped scenario pack.

Every scenario in ``repro/scenario/pack`` runs under the full invariant
monitor suite (via the ``scenario_spec`` pytest plugin fixture) and
must finish with zero violations and every declared expectation met.
The base seed honours ``REPRO_CHAOS_SEED`` so the CI chaos matrix
sweeps the pack across seeds.
"""

from __future__ import annotations

import json

from repro.scenario import (
    SCHEMA_VERSION,
    builtin_registry,
    load_spec,
    run_scenario,
)


def test_pack_is_a_real_pack():
    """The shipped pack meets the platform's own floor: 20+ scenarios,
    a chaos core, and every advertised adversity family covered."""
    registry = builtin_registry()
    assert len(registry) >= 20
    assert len(registry.names("chaos")) >= 15
    tags = registry.tags()
    for family in ("chaos", "crash", "partition", "disconnect",
                   "adversarial", "loss", "mobility"):
        assert family in tags, f"no scenario covers {family!r}"


def test_pack_specs_round_trip():
    """to_dict -> load_spec is the identity on every shipped spec."""
    for spec in builtin_registry().specs():
        clone = load_spec(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec, spec.name


def test_pack_names_match_filenames():
    import glob
    import os

    from repro.scenario import pack_dir

    for path in glob.glob(os.path.join(pack_dir(), "*.json")):
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        stem = os.path.splitext(os.path.basename(path))[0]
        assert data["name"] == stem, path


def test_scenario_certifies(scenario_spec, scenario_seed):
    """THE certification gate: zero invariant violations, every
    expectation met, for every scenario at the sweep seed."""
    result = run_scenario(scenario_spec, seed=scenario_seed)
    report = result.report
    assert report["monitors"]["violations"] == [], report
    assert result.failures == [], result.failures
    assert result.ok
    # The report is structured, complete and serializable.
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["scenario"] == scenario_spec.name
    assert report["seed"] == scenario_seed
    assert report["monitors"]["count"] == 12
    assert report["final_time"] >= scenario_spec.duration
    assert set(report["messages"]) >= {"fixed", "wireless", "search"}
    json.dumps(report)


def test_adversarial_scenario_actually_lies():
    """The adversarial scenario wires real malicious MHs into R2''."""
    spec = builtin_registry().get("adversarial_r2pp")
    assert spec.workload["malicious_mhs"] == [0, 2]
    result = run_scenario(spec, seed=7)
    assert result.ok
    # The token-list variant defends: lying never buys a violation.
    assert result.report["monitors"]["ok"]


def test_diurnal_scenario_moves_the_rates():
    """The rush hour genuinely changes arrival rates mid-run: the rush
    window completes far more requests than the quiet one."""
    spec = builtin_registry().get("diurnal_load")
    result = run_scenario(spec, seed=7)
    assert result.ok
    # 0.02 -> 0.12 -> 0.01 per MH: with 8 MHs over the windows the
    # total must clearly exceed the no-rush expectation.
    assert result.report["workload"]["completed"] >= 20
