"""Unit tests for the free-list object pools (repro.pool)."""

from __future__ import annotations

import pytest

import repro.pool as pool_mod
from repro.pool import Pool, PoolError, debug_enabled, set_debug


class Thing:
    def __init__(self) -> None:
        self.payload = None


def test_acquire_creates_then_reuses():
    pool = Pool(Thing, name="t")
    a = pool.acquire()
    assert pool.stats() == {"created": 1, "reused": 0, "released": 0, "free": 0}
    pool.release(a)
    b = pool.acquire()
    assert b is a
    assert pool.stats() == {"created": 1, "reused": 1, "released": 1, "free": 0}


def test_reset_hook_runs_on_release():
    cleared = []

    def reset(obj):
        cleared.append(obj)
        obj.payload = None

    pool = Pool(Thing, reset=reset)
    obj = pool.acquire()
    obj.payload = "heavy protocol state"
    pool.release(obj)
    assert cleared == [obj]
    assert obj.payload is None


def test_capacity_bounds_retained_blocks():
    pool = Pool(Thing, capacity=2)
    objs = [pool.acquire() for _ in range(5)]
    for obj in objs:
        pool.release(obj)
    # Only `capacity` objects are shelved; the rest went to the GC.
    assert pool.free_count == 2
    assert pool.stats()["released"] == 5


def test_debug_double_release_raises():
    pool = Pool(Thing, debug=True)
    obj = pool.acquire()
    pool.release(obj)
    with pytest.raises(PoolError):
        pool.release(obj)


def test_debug_foreign_release_raises():
    pool = Pool(Thing, debug=True)
    with pytest.raises(PoolError):
        pool.release(Thing())


def test_debug_leak_detection():
    pool = Pool(Thing, debug=True)
    kept = pool.acquire()
    with pytest.raises(PoolError):
        pool.check_leaks()
    pool.release(kept)
    pool.check_leaks()  # no outstanding objects: passes
    assert pool.outstanding_count == 0


def test_outstanding_count_requires_debug():
    pool = Pool(Thing, debug=False)
    with pytest.raises(PoolError):
        pool.outstanding_count


def test_non_debug_mode_skips_tracking():
    pool = Pool(Thing, debug=False)
    obj = pool.acquire()
    pool.release(obj)
    # No tracking: a double release is not detected (documented trade),
    # but the free list must still never hand the same object out twice
    # in correct usage.
    assert pool._outstanding is None


def test_set_debug_affects_new_pools_only(monkeypatch):
    monkeypatch.setattr(pool_mod, "_DEBUG", False)
    before = Pool(Thing)
    set_debug(True)
    assert debug_enabled()
    after = Pool(Thing)
    set_debug(False)
    assert before._outstanding is None
    assert after._outstanding is not None


def test_scheduler_pool_leak_free_in_debug_mode():
    """End-to-end: a debug-mode scheduler run acquires and releases
    every pooled event (no leaks, no double releases)."""
    from repro.sim import make_scheduler

    for kind in ("heap", "calendar"):
        sched = make_scheduler(kind)
        sched._pool = Pool(
            sched._pool._factory,
            reset=sched._pool._reset,
            capacity=64,
            debug=True,
        )
        for i in range(500):
            sched.post_at(float(i % 7) + i * 1e-3, lambda: None)
        sched.run()
        sched._pool.check_leaks()
        stats = sched._pool.stats()
        assert stats["released"] == stats["created"] + stats["reused"]


def test_monitor_hub_pool_leak_free_in_debug_mode():
    from repro.facade import Simulation

    sim = Simulation(2, 6, seed=11, monitors=True, monitor_sampling=0.1)
    hub = sim.monitor_hub
    hub._event_pool = Pool(
        hub._event_pool._factory,
        reset=hub._event_pool._reset,
        capacity=64,
        debug=True,
    )
    sim.run(until=200.0)
    hub._event_pool.check_leaks()
