"""Every public module must say where in the paper it comes from.

Runs ``tools/check_docstrings.py`` over ``src/repro``: each module
docstring needs a source anchor (a paper section, a ROADMAP item, a
citation tag).  The CI ``docs`` job runs the same script, so this test
keeps local runs and CI honest together.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_every_module_is_anchored():
    proc = subprocess.run(
        [sys.executable, os.path.join("tools", "check_docstrings.py")],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_a_bare_module(tmp_path):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "anchored.py").write_text(
        '"""Implements the paper\'s Section 2 protocol."""\n'
    )
    (bad / "bare.py").write_text('"""No anchor here."""\n')
    (bad / "naked.py").write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, os.path.join("tools", "check_docstrings.py"),
         "--root", str(bad)],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "bare.py" in proc.stdout
    assert "naked.py" in proc.stdout
    assert "anchored.py" not in proc.stdout


def test_perf_critical_modules_are_pinned_in_the_checker():
    """The calendar scheduler, the object pools, the monitor hub and
    the perf workloads are named in REQUIRED_MODULES: moving one
    without updating the lint fails the docs job."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_docstrings",
        os.path.join(REPO, "tools", "check_docstrings.py"),
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    required = {os.path.basename(m) for m in mod.REQUIRED_MODULES}
    assert "scheduler.py" in required
    assert "hub.py" in required
    assert "scenarios.py" in required
    assert any(m.startswith("pool") for m in mod.REQUIRED_MODULES)
    for suffix in mod.REQUIRED_MODULES:
        assert os.path.exists(os.path.join(REPO, "src", "repro", suffix))
