"""Tests for dynamic group membership (extension of Section 4).

The paper assumes fixed membership ("the problem is to efficiently
maintain the location of group members even after assuming that group
membership does not change"); this extension lets members join and
leave, with each strategy updating its location state through its own
messages.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)

from conftest import make_sim


def build(strategy_class, g=4, n_mss=8, n_mh=6):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, placement="round_robin")
    group = strategy_class(sim.network, sim.mh_ids[:g])
    return sim, group


class TestBaseMembership:
    def test_add_member_receives_future_messages(self):
        for cls in (PureSearchGroup, AlwaysInformGroup,
                    LocationViewGroup):
            sim, group = build(cls)
            group.add_member("mh-4")
            sim.drain()
            group.send("mh-0", "post-join")
            sim.drain()
            assert "mh-4" in group.deliveries_of("post-join"), cls

    def test_removed_member_receives_nothing_more(self):
        for cls in (PureSearchGroup, AlwaysInformGroup,
                    LocationViewGroup):
            sim, group = build(cls)
            group.remove_member("mh-2")
            sim.drain()
            group.send("mh-0", "post-leave")
            sim.drain()
            assert "mh-2" not in group.deliveries_of("post-leave"), cls
            assert sorted(group.deliveries_of("post-leave")) == [
                "mh-1", "mh-3"
            ], cls

    def test_double_add_rejected(self):
        sim, group = build(PureSearchGroup)
        with pytest.raises(ConfigurationError):
            group.add_member("mh-0")

    def test_remove_non_member_rejected(self):
        sim, group = build(PureSearchGroup)
        with pytest.raises(ConfigurationError):
            group.remove_member("mh-5")

    def test_disconnected_mh_cannot_join(self):
        sim, group = build(PureSearchGroup)
        sim.mh(4).disconnect()
        sim.drain()
        with pytest.raises(ConfigurationError):
            group.add_member("mh-4")

    def test_membership_changes_counted(self):
        sim, group = build(PureSearchGroup)
        group.add_member("mh-4")
        group.remove_member("mh-4")
        assert group.stats.membership_changes == 2

    def test_rejoin_after_leave_works(self):
        sim, group = build(PureSearchGroup)
        group.remove_member("mh-1")
        sim.drain()
        group.add_member("mh-1")
        sim.drain()
        group.send("mh-0", "back")
        sim.drain()
        assert "mh-1" in group.deliveries_of("back")

    def test_accounting_invariant_across_membership_changes(self):
        sim, group = build(PureSearchGroup)
        group.send("mh-0", "a")          # 3 recipients
        sim.drain()
        group.add_member("mh-4")
        sim.drain()
        group.send("mh-0", "b")          # 4 recipients
        sim.drain()
        group.remove_member("mh-1")
        sim.drain()
        group.send("mh-0", "c")          # 3 recipients
        sim.drain()
        assert group.stats.expected_recipients == 10
        assert group.stats.deliveries + group.stats.missed == 10

    def test_moves_of_removed_member_not_counted(self):
        sim, group = build(PureSearchGroup)
        group.remove_member("mh-1")
        sim.drain()
        before = group.stats.moves
        sim.mh(1).move_to("mss-6")
        sim.drain()
        assert group.stats.moves == before


class TestAlwaysInformMembership:
    def test_newcomer_learns_all_locations(self):
        sim, group = build(AlwaysInformGroup)
        group.add_member("mh-4")
        sim.drain()
        directory = group.directories["mh-4"]
        for member in ("mh-0", "mh-1", "mh-2", "mh-3"):
            assert directory[member] == f"mss-{member[-1]}"

    def test_everyone_learns_newcomer(self):
        sim, group = build(AlwaysInformGroup)
        group.add_member("mh-4")
        sim.drain()
        for member in ("mh-0", "mh-1", "mh-2", "mh-3"):
            assert group.directories[member]["mh-4"] == "mss-4"

    def test_newcomer_can_send_before_welcomes_arrive(self):
        sim, group = build(AlwaysInformGroup)
        group.add_member("mh-4")
        # No drain: the hello/welcome exchange is still in flight.
        group.send("mh-4", "eager")
        sim.drain()
        assert sorted(group.deliveries_of("eager")) == [
            "mh-0", "mh-1", "mh-2", "mh-3"
        ]

    def test_goodbye_cleans_directories(self):
        sim, group = build(AlwaysInformGroup)
        group.remove_member("mh-2")
        sim.drain()
        for member in ("mh-0", "mh-1", "mh-3"):
            assert "mh-2" not in group.directories[member]

    def test_newcomer_tracked_on_later_moves(self):
        sim, group = build(AlwaysInformGroup)
        group.add_member("mh-4")
        sim.drain()
        sim.mh(4).move_to("mss-7")
        sim.drain()
        for member in ("mh-0", "mh-1", "mh-2", "mh-3"):
            assert group.directories[member]["mh-4"] == "mss-7"


class TestLocationViewMembership:
    def test_join_in_fresh_cell_extends_view(self):
        sim, group = build(LocationViewGroup)
        assert group.coordinator_view() == {
            "mss-0", "mss-1", "mss-2", "mss-3"
        }
        group.add_member("mh-4")  # lives in mss-4, outside the view
        sim.drain()
        assert group.coordinator_view() == {
            "mss-0", "mss-1", "mss-2", "mss-3", "mss-4"
        }

    def test_join_in_covered_cell_keeps_view(self):
        sim = make_sim(n_mss=8, n_mh=6, placement=[0, 1, 2, 3, 0, 1])
        group = LocationViewGroup(sim.network, sim.mh_ids[:4])
        view = group.coordinator_view()
        group.add_member("mh-4")  # lives in mss-0, already in the view
        sim.drain()
        assert group.coordinator_view() == view

    def test_leave_of_sole_cell_member_shrinks_view(self):
        sim, group = build(LocationViewGroup)
        group.remove_member("mh-3")
        sim.drain()
        assert group.coordinator_view() == {"mss-0", "mss-1", "mss-2"}

    def test_leave_of_shared_cell_member_keeps_view(self):
        sim = make_sim(n_mss=8, n_mh=6, placement=[0, 1, 2, 3, 3, 1])
        group = LocationViewGroup(sim.network, sim.mh_ids[:5])
        view = group.coordinator_view()
        group.remove_member("mh-4")  # mh-3 still lives in mss-3
        sim.drain()
        assert group.coordinator_view() == view

    def test_copies_converge_after_membership_churn(self):
        sim, group = build(LocationViewGroup)
        group.add_member("mh-4")
        sim.drain()
        group.remove_member("mh-0")
        sim.drain()
        expected = group.coordinator_view()
        for mss_id in expected:
            assert group.view_copies[mss_id] == expected
