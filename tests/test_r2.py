"""Tests for Algorithms R2, R2' and R2'': the MSS token ring."""

from __future__ import annotations

from repro import Category, CriticalResource, R2Mutex, R2Variant
from repro.analysis import formulas
from repro.net import ConstantLatency, NetworkConfig

from conftest import make_sim


def build_r2(n_mss=4, n_mh=4, variant=R2Variant.PLAIN, max_traversals=1,
             **kwargs):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, placement="round_robin",
                   **kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        variant=variant,
        max_traversals=max_traversals,
    )
    return sim, resource, mutex


def test_request_served_when_token_arrives():
    sim, resource, mutex = build_r2()
    mutex.request("mh-2")
    sim.drain()
    mutex.start()
    sim.drain()
    assert resource.holders_in_order() == ["mh-2"]
    assert [mh for (_, mh) in mutex.completed] == ["mh-2"]


def test_traversal_cost_matches_paper_formula_with_nomadic_requesters():
    """K requests, each from a MH that moved after requesting, cost
    K*(3*C_w + C_f + C_s) + M*C_f per traversal."""
    n = 5
    sim, resource, mutex = build_r2(n_mss=n, n_mh=n)
    costs = sim.cost_model
    for i in range(n):
        mutex.request(f"mh-{i}")
    sim.drain()
    # Every requester moves two cells over: the grant needs a search and
    # the token returns over a fixed hop -- the paper's accounting.
    for i in range(n):
        sim.mh(i).move_to(f"mss-{(i + 2) % n}")
    sim.drain()
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.cost(costs, "R2") == formulas.r2_traversal_cost(
        n, n, costs
    ) - n * costs.c_wireless  # requests were counted before the snapshot
    assert resource.access_count == n
    resource.assert_no_overlap()


def test_full_cost_including_requests_matches_formula():
    n = 4
    sim, resource, mutex = build_r2(n_mss=n, n_mh=n)
    costs = sim.cost_model
    before = sim.metrics.snapshot()
    for i in range(n):
        mutex.request(f"mh-{i}")
    sim.drain()
    for i in range(n):
        sim.mh(i).move_to(f"mss-{(i + 2) % n}")
    sim.drain()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.cost(costs, "R2") == formulas.r2_traversal_cost(
        n, n, costs
    )


def test_traversal_cost_with_zero_requests_is_m_fixed():
    sim, resource, mutex = build_r2(n_mss=6, n_mh=0)
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.cost(sim.cost_model, "R2") == 6 * sim.cost_model.c_fixed


def test_only_requesters_spend_energy():
    sim, resource, mutex = build_r2()
    mutex.request("mh-1")
    sim.drain()
    mutex.start()
    sim.drain()
    assert sim.metrics.energy("mh-1") == formulas.r2_energy_per_request()
    for mh_id in ("mh-0", "mh-2", "mh-3"):
        assert sim.metrics.energy(mh_id) == 0


def test_dozing_nonrequester_not_interrupted():
    sim, resource, mutex = build_r2()
    sim.mh(0).doze()
    mutex.request("mh-1")
    sim.drain()
    mutex.start()
    sim.drain()
    assert sim.mh(0).doze_interruptions == 0
    assert resource.access_count == 1


def chase_config():
    """Timing that lets a MH outrun the token to the next MSS: quick
    wireless hops and moves, slow fixed network."""
    return dict(
        transit_time=0.1,
        search_delay=0.1,
        search_retry_delay=0.1,
        fixed_latency=10.0,
        wireless_latency=0.05,
    )


def chase(sim, mutex, mh_index, next_mss):
    """After each completed access, move the MH to ``next_mss`` and
    request again -- the paper's multiple-accesses-per-traversal
    scenario."""
    done = {"count": 0}

    def on_complete(mh_id):
        done["count"] += 1
        if done["count"] == 1:
            sim.mh(mh_index).move_to(next_mss)
            sim.scheduler.schedule(
                0.5, lambda: mutex.request(f"mh-{mh_index}")
            )

    mutex.on_complete = on_complete
    return done


class TestFairnessVariants:
    def test_plain_r2_serves_a_chasing_mh_twice_per_traversal(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.PLAIN, max_traversals=1,
            **chase_config(),
        )
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        # Served at mss-0 and again at mss-1 within the same traversal.
        assert resource.holders_in_order() == ["mh-0", "mh-0"]

    def test_r2_prime_limits_to_one_access_per_traversal(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.COUNTER, max_traversals=1,
            **chase_config(),
        )
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        assert resource.holders_in_order() == ["mh-0"]

    def test_r2_prime_serves_again_next_traversal(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.COUNTER, max_traversals=2,
            **chase_config(),
        )
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        assert resource.holders_in_order() == ["mh-0", "mh-0"]

    def test_malicious_mh_fools_r2_prime(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.COUNTER, max_traversals=1,
            **chase_config(),
        )
        mutex.malicious_mhs.add("mh-0")
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        # The lie (access_count=0) earns a second access per traversal.
        assert resource.holders_in_order() == ["mh-0", "mh-0"]

    def test_token_list_variant_resists_malicious_mh(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.TOKEN_LIST,
            max_traversals=1, **chase_config(),
        )
        mutex.malicious_mhs.add("mh-0")
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        # The token remembers <mss-0, mh-0>; the second request waits.
        assert resource.holders_in_order() == ["mh-0"]

    def test_token_list_serves_again_after_full_traversal(self):
        sim, resource, mutex = build_r2(
            n_mss=4, n_mh=4, variant=R2Variant.TOKEN_LIST,
            max_traversals=2, **chase_config(),
        )
        mutex.malicious_mhs.add("mh-0")
        mutex.request("mh-0")
        sim.drain()
        chase(sim, mutex, 0, "mss-1")
        mutex.start()
        sim.drain()
        # Second access only after the token visited every MSS again
        # and mss-0's pair was purged... the entry <mss-0, mh-0> is
        # deleted when the token revisits mss-0, so the request queued
        # at mss-1 is served in traversal 2.
        assert resource.holders_in_order() == ["mh-0", "mh-0"]


class TestDisconnection:
    def test_disconnected_requester_skipped_token_returned(self):
        sim, resource, mutex = build_r2(n_mss=4, n_mh=4)
        mutex.request("mh-1")
        mutex.request("mh-2")
        sim.drain()
        sim.mh(1).disconnect()
        sim.drain()
        mutex.start()
        sim.drain()
        assert mutex.skipped_disconnected == ["mh-1"]
        assert resource.holders_in_order() == ["mh-2"]
        assert mutex.finished

    def test_bystander_disconnection_has_no_effect(self):
        sim, resource, mutex = build_r2(n_mss=4, n_mh=4)
        sim.mh(3).disconnect()
        sim.drain()
        mutex.request("mh-0")
        sim.drain()
        mutex.start()
        sim.drain()
        assert resource.access_count == 1
        assert mutex.finished


def test_requests_during_service_wait_for_next_traversal():
    sim, resource, mutex = build_r2(n_mss=3, n_mh=3, max_traversals=2)
    mutex.request("mh-0")
    sim.drain()
    mutex.start()
    sim.drain()
    assert resource.access_count == 1


def test_multiple_requesters_all_served_in_one_traversal():
    sim, resource, mutex = build_r2(n_mss=4, n_mh=4)
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    mutex.start()
    sim.drain()
    assert sorted(resource.holders_in_order()) == sorted(sim.mh_ids)
    resource.assert_no_overlap()
