"""Tests for `repro perf --compare` against partial baselines.

A BENCH baseline written before a scenario existed must not crash the
comparison (the KeyError satellite of the observability PR): scenarios
measured now but absent from the baseline are reported as
"new scenario (no baseline)" and never gate the regression check.
See docs/performance.md for the BENCH trajectory workflow.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.harness import SCHEMA, compare


@pytest.fixture()
def emit_lines():
    lines = []

    def emit(line=""):
        lines.append(str(line))

    return lines, emit


def write_baseline(path, scenarios):
    record = {
        "schema": SCHEMA,
        "calibration_ops_per_sec": 1_000_000.0,
        "scenarios": scenarios,
    }
    path.write_text(json.dumps(record))
    return str(path)


def test_new_scenario_reported_not_crashed(tmp_path, emit_lines):
    lines, emit = emit_lines
    baseline = write_baseline(tmp_path / "BENCH_0.json", {})
    code = main(
        ["perf", "--scenario", "smoke_search", "--repeats", "1",
         "--compare", baseline],
        emit=emit,
    )
    assert code == 0
    joined = "\n".join(lines)
    assert "new scenario (no baseline)" in joined
    assert "smoke_search" in joined


def test_common_scenarios_still_gated(tmp_path, emit_lines):
    """A baseline that does know the scenario produces a delta row and
    an honest regression verdict (an impossible floor must fail)."""
    lines, emit = emit_lines
    baseline = write_baseline(
        tmp_path / "BENCH_0.json",
        {"smoke_search": {"events_per_sec": 1e12,
                          "wall_time_s": 0.001, "events": 5675}},
    )
    code = main(
        ["perf", "--scenario", "smoke_search", "--repeats", "1",
         "--compare", baseline],
        emit=emit,
    )
    assert code == 1
    joined = "\n".join(lines)
    assert "REGRESSION" in joined
    assert "new scenario (no baseline)" not in joined


def test_compare_skips_missing_scenarios():
    """The library-level diff only pairs scenarios present in both
    records; extras on either side are ignored, not KeyErrors."""
    current = {
        "calibration_ops_per_sec": 100.0,
        "scenarios": {
            "a": {"events_per_sec": 10.0},
            "only_current": {"events_per_sec": 1.0},
        },
    }
    baseline = {
        "calibration_ops_per_sec": 100.0,
        "scenarios": {
            "a": {"events_per_sec": 5.0},
            "only_baseline": {"events_per_sec": 2.0},
        },
    }
    deltas = compare(current, baseline)
    assert [d.name for d in deltas] == ["a"]
    assert deltas[0].raw_ratio == pytest.approx(2.0)
