"""Tests for workload generators driving the algorithms over time."""

from __future__ import annotations

import random

import pytest

from repro import CriticalResource, L2Mutex, R2Mutex
from repro.errors import ConfigurationError
from repro.groups import PureSearchGroup
from repro.mobility import UniformMobility
from repro.workload import GroupMessagingWorkload, MutexWorkload

from conftest import make_sim


def test_mutex_workload_drives_l2_to_completion():
    sim = make_sim(n_mss=4, n_mh=8)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.5)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.05, rng=random.Random(2))
    sim.run(until=200.0)
    workload.stop()
    sim.drain()
    assert workload.issued > 0
    assert workload.completed == workload.issued
    assert resource.access_count == workload.issued
    resource.assert_no_overlap()


def test_mutex_workload_under_mobility_is_safe():
    sim = make_sim(n_mss=5, n_mh=10)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.05, rng=random.Random(8))
    mobility = UniformMobility(sim.network, sim.mh_ids, move_rate=0.05,
                               rng=random.Random(9))
    sim.run(until=300.0)
    workload.stop()
    mobility.stop()
    sim.drain()
    assert workload.completed == workload.issued
    resource.assert_no_overlap()


def test_mutex_workload_with_r2_ring():
    sim = make_sim(n_mss=4, n_mh=8)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, cs_duration=0.2)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.03, rng=random.Random(5))
    mutex.start()
    sim.run(until=300.0)
    workload.stop()
    # Let the ring keep circulating until every issued request is
    # served, then stop it at the next head arrival.
    deadline = 2000.0
    while workload.completed < workload.issued and sim.now < deadline:
        sim.run(until=sim.now + 50.0)
    mutex.max_traversals = 0
    sim.run(until=sim.now + 200.0)
    assert workload.issued > 0
    assert workload.completed == workload.issued
    resource.assert_no_overlap()


def test_mutex_workload_never_double_requests():
    sim = make_sim(n_mss=4, n_mh=2)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=50.0)
    workload = MutexWorkload(sim.network, mutex, ["mh-0"],
                             request_rate=5.0, rng=random.Random(1))
    sim.run(until=20.0)
    workload.stop()
    # Long CS: most arrivals drop while one request is outstanding.
    assert workload.issued == 1
    assert workload.dropped > 0


def test_mutex_workload_rejects_bad_rate():
    sim = make_sim()
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    with pytest.raises(ConfigurationError):
        MutexWorkload(sim.network, mutex, sim.mh_ids, 0.0,
                      random.Random(1))


def test_group_workload_sends_messages():
    sim = make_sim(n_mss=4, n_mh=6)
    group = PureSearchGroup(sim.network, sim.mh_ids)
    workload = GroupMessagingWorkload(sim.network, group,
                                      message_rate=0.2,
                                      rng=random.Random(3))
    sim.run(until=100.0)
    workload.stop()
    sim.drain()
    assert workload.sent > 0
    assert group.stats.messages == workload.sent
    # Every message reached all other members.
    assert group.stats.deliveries == workload.sent * (len(group.members) - 1)


def test_group_workload_controls_mob_msg_ratio():
    sim = make_sim(n_mss=6, n_mh=4)
    group = PureSearchGroup(sim.network, sim.mh_ids)
    workload = GroupMessagingWorkload(sim.network, group,
                                      message_rate=0.1,
                                      rng=random.Random(4))
    mobility = UniformMobility(sim.network, sim.mh_ids, move_rate=0.05,
                               rng=random.Random(5))
    sim.run(until=500.0)
    workload.stop()
    mobility.stop()
    sim.drain()
    ratio = group.stats.mobility_to_message_ratio
    # 4 members moving at 0.05 = 0.2 moves/unit vs 0.1 msgs/unit: the
    # measured ratio should be near 2.
    assert 1.0 < ratio < 4.0
