"""Bounded version of the deep fuzz harness (tools/fuzz_sweep.py).

A handful of seeds per invariant, cheap enough for every test run;
the full sweep (hundreds of seeds) is run manually via the tool.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import fuzz_sweep  # noqa: E402


@pytest.mark.parametrize("name", sorted(fuzz_sweep.CHECKS))
@pytest.mark.parametrize("seed", [0, 3, 7, 11, 42])
def test_fuzz_invariant(name, seed):
    check = fuzz_sweep.CHECKS[name]
    assert check(seed) is None


def test_harness_cli_runs():
    assert fuzz_sweep.main(["--seeds", "2", "--only", "mutex"]) == 0
