"""Calendar-queue scheduler tests: ordering parity with the heap,
resize boundaries, cancellation, and lazy-cancel compaction bounds."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim import SCHEDULER_KINDS, CalendarScheduler, Scheduler, make_scheduler


def test_make_scheduler_kinds():
    assert isinstance(make_scheduler("heap"), Scheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    with pytest.raises(ConfigurationError):
        make_scheduler("splay")


def test_scheduler_kinds_constant():
    assert SCHEDULER_KINDS == ("heap", "calendar")


def test_calendar_rejects_bad_geometry():
    with pytest.raises(ConfigurationError):
        CalendarScheduler(n_buckets=0)
    with pytest.raises(ConfigurationError):
        CalendarScheduler(width=0.0)
    with pytest.raises(ConfigurationError):
        CalendarScheduler(width=-1.0)


# ---------------------------------------------------------------------------
# Heap/calendar parity: identical firing order, including (time, seq) ties
# ---------------------------------------------------------------------------


def _firing_order(sched, posts):
    fired = []
    for time, label in posts:
        sched.post_at(time, fired.append, label)
    sched.run()
    return fired


def test_same_time_seq_order_matches_heap():
    """Ties at the same time break by insertion order on both kinds."""
    rng = random.Random(7)
    posts = []
    for i in range(500):
        # Coarse time grid forces many exact ties.
        posts.append((float(rng.randrange(20)), i))
    heap_order = _firing_order(Scheduler(), list(posts))
    cal_order = _firing_order(CalendarScheduler(), list(posts))
    assert heap_order == cal_order
    # And ties really are insertion-ordered.
    by_time = {}
    for time, label in posts:
        by_time.setdefault(time, []).append(label)
    fired_by_time = {}
    for label in heap_order:
        fired_by_time.setdefault(posts[label][0], []).append(label)
    for time, labels in by_time.items():
        assert fired_by_time[time] == labels


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_random_workload_fires_sorted(kind):
    rng = random.Random(42)
    sched = make_scheduler(kind)
    fired = []
    for i in range(2000):
        sched.post_at(rng.random() * 1000.0, fired.append, i)
    sched.run()
    assert len(fired) == 2000
    assert sched.pending_count == 0


def test_self_scheduling_workload_identical_across_kinds():
    """A dynamic workload (callbacks post new events) is step-for-step
    identical: same seq stream, same firing order, same final clock."""

    def drive(sched):
        rng = random.Random(99)
        trail = []

        def fire(label):
            trail.append((sched.now, label))
            if label < 3000:
                sched.post_at(
                    sched.now + rng.random() * 5.0, fire, label + 7
                )

        for i in range(40):
            sched.post_at(rng.random() * 3.0, fire, i)
        sched.run(max_events=5000)
        return trail, sched.now

    heap_trail, heap_now = drive(Scheduler())
    cal_trail, cal_now = drive(CalendarScheduler())
    assert heap_trail == cal_trail
    assert heap_now == cal_now


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_cancel_minimum_event(kind):
    """Cancelling the queue head must not fire it nor disturb the rest."""
    sched = make_scheduler(kind)
    fired = []
    head = sched.schedule_at(1.0, fired.append, "head")
    sched.schedule_at(2.0, fired.append, "second")
    sched.schedule_at(3.0, fired.append, "third")
    head.cancel()
    sched.run()
    assert fired == ["second", "third"]
    assert sched.now == 3.0
    assert sched.pending_count == 0


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_cancel_all_then_run_is_noop(kind):
    sched = make_scheduler(kind)
    fired = []
    handles = [sched.schedule_at(float(i), fired.append, i) for i in range(10)]
    for handle in handles:
        handle.cancel()
    assert sched.run() == 0
    assert fired == []
    assert sched.pending_count == 0


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_random_cancels_match_across_kinds(kind):
    rng = random.Random(5)
    sched = make_scheduler(kind)
    fired = []
    handles = [
        sched.schedule_at(rng.random() * 50.0, fired.append, i)
        for i in range(400)
    ]
    cancelled = set()
    for i in rng.sample(range(400), 150):
        handles[i].cancel()
        cancelled.add(i)
    sched.run()
    assert set(fired) == set(range(400)) - cancelled
    assert sched.pending_count == 0


# ---------------------------------------------------------------------------
# Lazy-cancel compaction: retained entries stay bounded
# ---------------------------------------------------------------------------


def _interleaved_burst(sched, base, n=1000):
    """Schedule ``n`` entries, then cancel every other one."""
    handles = [
        sched.schedule_at(base + i * 1e-6, lambda: None) for i in range(n)
    ]
    for handle in handles[::2]:
        handle.cancel()


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_compaction_fires_at_exactly_half_cancelled(kind):
    """Regression: interleaved cancellation parks the cancelled fraction
    at *exactly* 1/2 (each burst schedules N and cancels N/2, so the
    counter can reach but never exceed half).  A strictly-greater
    trigger never fires on that pattern and the queue retains one dead
    entry per live one forever; the at-least-half trigger reclaims them.
    """
    sched = make_scheduler(kind)
    _interleaved_burst(sched, 1000.0)
    assert sched.pending_count == 500
    size = len(sched._heap) if kind == "heap" else sched._n_entries
    # Without the fix: 1000 retained (500 live + 500 cancelled, parked
    # at exactly half).  With it: the final cancel reaches the at-least-
    # half trigger and the burst's garbage is dropped on the spot.
    assert size <= 500 + 2 * sched._COMPACT_MIN
    sched.run()
    assert sched.pending_count == 0


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_compaction_bounds_garbage_across_many_bursts(kind):
    """Long-run invariant: retained cancelled entries never exceed the
    live population (plus the small-heap floor), no matter how many
    bursty cancellation rounds run."""
    sched = make_scheduler(kind)
    for round_no in range(40):
        _interleaved_burst(sched, 1000.0 * (round_no + 1), n=100)
        live = sched.pending_count
        size = len(sched._heap) if kind == "heap" else sched._n_entries
        assert size - live <= live + 2 * sched._COMPACT_MIN
    assert sched.pending_count == 2000
    sched.run()
    assert sched.pending_count == 0


def test_compaction_during_run_from_live_pops():
    """Cancellations whose fraction crosses 1/2 only because live events
    popped (no further cancel() calls) are still reclaimed by the run
    loop's own compaction check."""
    sched = Scheduler()
    for i in range(300):
        sched.schedule_at(float(i), lambda: None)
    far = [sched.schedule_at(10_000.0 + i, lambda: None) for i in range(200)]
    for handle in far:
        handle.cancel()
    # 200 cancelled of 500: under half, _note_cancel does not compact.
    assert len(sched._heap) == 500
    sched.run(until=299.0)
    # All 300 live entries fired; the run loop must have compacted the
    # 200 cancelled stragglers rather than retaining them indefinitely.
    assert sched.pending_count == 0
    assert len(sched._heap) <= 2 * sched._COMPACT_MIN


# ---------------------------------------------------------------------------
# Calendar resize boundaries
# ---------------------------------------------------------------------------


def test_calendar_grows_buckets_under_load():
    sched = CalendarScheduler()
    assert sched._n_buckets == CalendarScheduler._MIN_BUCKETS
    rng = random.Random(3)
    for i in range(5000):
        sched.post_at(rng.random() * 100.0, lambda: None)
    assert sched._n_buckets > CalendarScheduler._MIN_BUCKETS
    assert sched._n_entries == 5000
    assert sched.run() == 5000


def test_calendar_resize_boundary_crossing():
    """Events scheduled exactly at and around a resize keep firing in
    sorted order: the doubling threshold is entries > 2 * n_buckets."""
    sched = CalendarScheduler()
    fired = []
    # 16 buckets initially -> first resize on the 33rd entry.
    n_trigger = 2 * sched._n_buckets + 1
    for i in range(n_trigger - 1):
        sched.post_at(10.0 + i * 0.25, fired.append, i)
    before = sched._n_buckets
    sched.post_at(5.0, fired.append, "early")  # crosses the threshold
    assert sched._n_buckets == 2 * before
    sched.post_at(1.0, fired.append, "earliest")  # lands post-resize
    sched.run()
    assert fired[0] == "earliest"
    assert fired[1] == "early"
    assert fired[2:] == list(range(n_trigger - 1))


def test_calendar_shrinks_after_mass_cancellation():
    sched = CalendarScheduler()
    handles = [
        sched.schedule_at(float(i) * 0.5, lambda: None) for i in range(4096)
    ]
    grown = sched._n_buckets
    assert grown > CalendarScheduler._MIN_BUCKETS
    for handle in handles:
        handle.cancel()
    # Compaction piggybacked on cancel bookkeeping; emptying the queue
    # must also have shrunk the bucket array.
    assert sched.pending_count == 0
    assert sched._n_buckets < grown


def test_calendar_fixed_width_never_retunes():
    sched = CalendarScheduler(width=2.0)
    for i in range(200):
        sched.post_at(float(i), lambda: None)
    assert sched._width == 2.0
    sched.run()
    assert sched._width == 2.0


def test_calendar_far_future_events_fall_back_to_direct_scan():
    """Events many laps ahead of now (beyond n_buckets days) are found
    via the full-lap fallback, in order."""
    sched = CalendarScheduler(width=1.0, n_buckets=4)
    fired = []
    sched.post_at(1e6, fired.append, "far")
    sched.post_at(2e6, fired.append, "farther")
    sched.post_at(0.5, fired.append, "near")
    sched.run()
    assert fired == ["near", "far", "farther"]


# ---------------------------------------------------------------------------
# Empty-queue behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_empty_queue_drain(kind):
    sched = make_scheduler(kind)
    assert sched.drain() == 0
    assert sched.pending_count == 0
    assert sched.now == 0.0
    assert sched.step() is False


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_run_until_on_empty_queue_advances_clock(kind):
    sched = make_scheduler(kind)
    sched.run(until=12.5)
    assert sched.now == 12.5
    # Queue drained mid-run: later events still fire on a fresh run.
    fired = []
    sched.schedule(1.0, fired.append, "x")
    sched.run()
    assert fired == ["x"]
    assert sched.now == 13.5


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_pool_recycles_fire_and_forget_events(kind):
    sched = make_scheduler(kind)
    for _ in range(3):
        for i in range(100):
            sched.post_at(sched.now + 1.0 + i * 0.01, lambda: None)
        sched.run()
    stats = sched.pool_stats
    assert stats is not None
    # After warmup, posts are served from the free list, not malloc.
    assert stats["reused"] > 0
    assert stats["created"] <= 100
    assert stats["released"] == stats["created"] + stats["reused"]


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_pooling_off_allocates_fresh_events(kind):
    sched = make_scheduler(kind, pooling=False)
    fired = []
    sched.post_at(1.0, fired.append, "a")
    sched.run()
    assert fired == ["a"]
    assert sched.pool_stats is None
