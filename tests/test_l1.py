"""Tests for Algorithm L1: Lamport's mutex directly on mobile hosts."""

from __future__ import annotations

import pytest

from repro import Category, CostModel, CriticalResource, L1Mutex
from repro.analysis import formulas

from conftest import make_sim


def build_l1(n=4, **kwargs):
    # One MH per cell so that every MH->MH message genuinely crosses
    # cells and incurs a search (the paper's accounting).
    sim = make_sim(n_mss=n, n_mh=n, placement="round_robin", **kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource)
    return sim, resource, mutex


def test_single_request_grants_and_releases():
    sim, resource, mutex = build_l1()
    mutex.request("mh-0")
    sim.drain()
    assert resource.access_count == 1
    assert resource.holders_in_order() == ["mh-0"]
    assert [mh for (_, mh) in mutex.completed] == ["mh-0"]


def test_execution_cost_matches_paper_formula():
    sim, resource, mutex = build_l1(n=5)
    costs = sim.cost_model
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.drain()
    delta = sim.metrics.since(before)
    n = 5
    assert delta.cost(costs, "L1") == formulas.l1_execution_cost(n, costs)
    assert delta.total(Category.SEARCH, "L1") == formulas.l1_search_count(n)
    assert delta.total(Category.WIRELESS, "L1") == 2 * \
        formulas.l1_message_count(n)


def test_energy_matches_paper_formula():
    sim, resource, mutex = build_l1(n=6)
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.energy() == formulas.l1_energy_total(6)
    assert delta.energy("mh-0") == formulas.l1_energy_initiator(6)
    for other in ["mh-1", "mh-2", "mh-3", "mh-4", "mh-5"]:
        assert delta.energy(other) == formulas.l1_energy_non_initiator()


def test_search_overhead_grows_linearly_with_n():
    searches = {}
    for n in (3, 5, 9):
        sim, resource, mutex = build_l1(n=n)
        mutex.request("mh-0")
        sim.drain()
        searches[n] = sim.metrics.total(Category.SEARCH, "L1")
    assert searches[5] - searches[3] == 6
    assert searches[9] - searches[5] == 12


def test_concurrent_requests_are_safe_and_all_served():
    sim, resource, mutex = build_l1(n=5)
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    assert resource.access_count == 5
    resource.assert_no_overlap()
    assert sorted(resource.holders_in_order()) == sorted(sim.mh_ids)


def test_all_mhs_participate_even_without_interest():
    """Every MH pays energy in every execution -- the battery drawback."""
    sim, resource, mutex = build_l1(n=4)
    mutex.request("mh-0")
    sim.drain()
    for mh_id in sim.mh_ids:
        assert sim.metrics.energy(mh_id) > 0


def test_disconnection_blocks_progress():
    """L1 does not provide for disconnection: a detached participant
    stalls every later execution (paper Section 3.1.1)."""
    sim, resource, mutex = build_l1(n=4)
    sim.mh(3).disconnect()
    sim.drain()
    mutex.request("mh-0")
    sim.run(until=500.0)
    # mh-3 cannot reply, so mh-0 never enters the region.
    assert resource.access_count == 0
    assert mutex.node("mh-0").pending_tags() == ["mh-0"]


def test_requests_serialize_one_at_a_time():
    sim, resource, mutex = build_l1(n=3)
    mutex.request("mh-0")
    mutex.request("mh-1")
    sim.drain()
    resource.assert_no_overlap()
    assert resource.access_count == 2


def test_works_with_shared_cells_too():
    # All MHs in one cell: no searches needed, but the algorithm is
    # unchanged.
    sim = make_sim(n_mss=2, n_mh=4, placement="single_cell")
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource)
    mutex.request("mh-2")
    sim.drain()
    assert resource.access_count == 1
    assert sim.metrics.total(Category.SEARCH, "L1") == 0
