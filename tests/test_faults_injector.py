"""Tests for fault plans and the fault injector."""

from __future__ import annotations

import json

import pytest

from repro import (
    Category,
    FaultPlan,
    LinkFault,
    MssCrash,
    Partition,
    Simulation,
)
from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultInjector
from repro.net import ConstantLatency, Message, NetworkConfig

from conftest import make_sim


def fault_sim(plan, n_mss=3, n_mh=0, seed=1, **config_kwargs):
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
        **config_kwargs,
    )
    return Simulation(
        n_mss=n_mss, n_mh=n_mh, seed=seed, config=config, fault_plan=plan
    )


def collect(sim, mss_index, kind):
    """Record (time, payload) for every ``kind`` arriving at a MSS."""
    received = []
    sim.mss(mss_index).register_handler(
        kind, lambda m: received.append((sim.now, m.payload))
    )
    return received


class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(drop=0.2, duplicate=0.1, extra_delay=3.0,
                          src="mss-0", end=50.0),
            ),
            partitions=(
                Partition(groups=(("mss-0",), ("mss-1", "mss-2")),
                          start=10.0, end=20.0),
            ),
            crashes=(MssCrash("mss-1", at=5.0, recover_at=30.0),),
            seed=9,
            reliable=False,
            rejoin_delay=2.5,
        )
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"drop_rate": 0.5})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFault(drop=1.5)
        with pytest.raises(ConfigurationError):
            LinkFault(extra_delay=-1.0)
        with pytest.raises(ConfigurationError):
            LinkFault(start=5.0, end=5.0)
        with pytest.raises(ConfigurationError):
            MssCrash("mss-0", at=3.0, recover_at=3.0)
        with pytest.raises(ConfigurationError):
            Partition(groups=(("mss-0",), ("mss-0",)))
        with pytest.raises(ConfigurationError):
            FaultPlan(rejoin_delay=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(retransmit_backoff=0.5)

    def test_link_fault_matching(self):
        fault = LinkFault(drop=1.0, src="mss-0", dst="mss-1",
                          start=5.0, end=10.0)
        assert fault.applies("mss-0", "mss-1", 5.0)
        assert not fault.applies("mss-0", "mss-1", 10.0)  # end exclusive
        assert not fault.applies("mss-0", "mss-1", 2.0)
        assert not fault.applies("mss-1", "mss-0", 7.0)

    def test_partition_severs_across_groups_only(self):
        part = Partition(groups=(("mss-0",), ("mss-1",)), end=10.0)
        assert part.severs("mss-0", "mss-1", 5.0)
        assert part.severs("mss-0", "mss-2", 5.0)  # implicit group
        assert not part.severs("mss-2", "mss-3", 5.0)  # both implicit
        assert not part.severs("mss-0", "mss-1", 15.0)  # window over


class TestLinkFaults:
    def test_drop_probability_one_loses_every_message(self):
        plan = FaultPlan(
            link_faults=(LinkFault(drop=1.0),), reliable=False
        )
        sim = fault_sim(plan)
        received = collect(sim, 1, "t.ping")
        for i in range(3):
            sim.mss(0).send_fixed("mss-1", "t.ping", i, "t")
        sim.drain()
        assert received == []
        assert sim.metrics.fault_total("fixed.dropped") == 3
        # The transmission was still paid for: loss is not a discount.
        assert sim.metrics.total(Category.FIXED, "t") == 3

    def test_duplicate_probability_one_delivers_twice(self):
        plan = FaultPlan(
            link_faults=(LinkFault(duplicate=1.0),), reliable=False
        )
        sim = fault_sim(plan)
        received = collect(sim, 1, "t.ping")
        sim.mss(0).send_fixed("mss-1", "t.ping", "x", "t")
        sim.drain()
        assert [payload for (_, payload) in received] == ["x", "x"]
        assert sim.fault_injector.stats["fixed.duplicated"] == 1

    def test_extra_delay_defers_arrival(self):
        plan = FaultPlan(
            link_faults=(LinkFault(extra_delay=3.0),), reliable=False
        )
        sim = fault_sim(plan)
        received = collect(sim, 1, "t.ping")
        sim.mss(0).send_fixed("mss-1", "t.ping", "x", "t")
        sim.drain()
        assert received == [(4.0, "x")]  # 1.0 latency + 3.0 penalty

    def test_window_and_direction_limit_the_damage(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(drop=1.0, src="mss-0", dst="mss-1", end=10.0),
            ),
            reliable=False,
        )
        sim = fault_sim(plan)
        forward = collect(sim, 1, "t.ping")
        backward = collect(sim, 0, "t.pong")
        sim.mss(0).send_fixed("mss-1", "t.ping", "early", "t")
        sim.mss(1).send_fixed("mss-0", "t.pong", "reverse", "t")
        sim.scheduler.schedule_at(
            12.0,
            lambda: sim.mss(0).send_fixed("mss-1", "t.ping", "late", "t"),
        )
        sim.drain()
        assert [p for (_, p) in forward] == ["late"]
        assert [p for (_, p) in backward] == ["reverse"]


class TestPartitions:
    def test_cross_group_messages_dropped_until_heal(self):
        plan = FaultPlan(
            partitions=(
                Partition(groups=(("mss-0",), ("mss-1",)), end=10.0),
            ),
            reliable=False,
        )
        sim = fault_sim(plan)
        received = collect(sim, 1, "t.ping")
        sim.mss(0).send_fixed("mss-1", "t.ping", "severed", "t")
        sim.scheduler.schedule_at(
            11.0,
            lambda: sim.mss(0).send_fixed("mss-1", "t.ping", "healed", "t"),
        )
        sim.drain()
        assert [p for (_, p) in received] == ["healed"]
        assert sim.metrics.fault_total("fixed.partition_dropped") == 1

    def test_same_side_traffic_unaffected(self):
        plan = FaultPlan(
            partitions=(Partition(groups=(("mss-0",), ("mss-1",)),),),
            reliable=False,
        )
        sim = fault_sim(plan, n_mss=4)
        received = collect(sim, 3, "t.ping")
        sim.mss(2).send_fixed("mss-3", "t.ping", "implicit", "t")
        sim.drain()
        assert [p for (_, p) in received] == ["implicit"]


class TestCrashes:
    def test_crash_orphans_local_mhs_and_they_rejoin(self):
        plan = FaultPlan(
            crashes=(MssCrash("mss-0", at=5.0),), rejoin_delay=2.0
        )
        sim = fault_sim(plan, n_mss=3, n_mh=3)  # mh-0 lives at mss-0
        sim.drain()
        mh = sim.mh(0)
        assert sim.mss(0).crashed
        assert not sim.mss(0).local_mhs
        assert mh.is_connected
        assert mh.current_mss_id != "mss-0"
        assert not mh.orphaned
        snap = sim.metrics.snapshot()
        assert snap.fault_total("mss.crash") == 1
        assert snap.fault_total("mh.orphaned") == 1
        assert snap.fault_total("mh.rejoined") == 1
        assert snap.recovery_times == (pytest.approx(2.0),)

    def test_messages_to_crashed_mss_vanish(self):
        plan = FaultPlan(crashes=(MssCrash("mss-1", at=0.0),),
                         reliable=False)
        sim = fault_sim(plan)
        received = collect(sim, 1, "t.ping")
        sim.mss(0).send_fixed("mss-1", "t.ping", "x", "t")
        sim.drain()
        assert received == []
        assert sim.metrics.fault_total("msg.to_crashed_mss") == 1

    def test_crashed_mss_transmits_nothing(self):
        plan = FaultPlan(crashes=(MssCrash("mss-1", at=0.0),),
                         reliable=False)
        sim = fault_sim(plan)
        received = collect(sim, 0, "t.pong")
        sim.drain()  # let the crash fire
        sim.mss(1).send_fixed("mss-0", "t.pong", "x", "t")
        sim.drain()
        assert received == []
        assert sim.metrics.fault_total("fixed.dropped_src_crashed") == 1

    def test_crashed_mss_wireless_is_dead_air(self):
        plan = FaultPlan(crashes=(MssCrash("mss-1", at=0.0),),
                         rejoin_delay=50.0)
        sim = fault_sim(plan, n_mss=3, n_mh=3)  # mh-1 lives at mss-1
        sim.run(until=1.0)  # crash fired, rejoin still pending
        lost = []
        sim.network.send_wireless_down(
            "mss-1", "mh-1",
            Message(kind="t.down", src="mss-1", dst="mh-1",
                    payload=None, scope="t"),
            on_lost=lost.append,
        )
        assert len(lost) == 1
        assert sim.metrics.fault_total("wireless.dropped_src_crashed") == 1

    def test_recovery_restores_service_and_fires_listeners(self):
        plan = FaultPlan(
            crashes=(MssCrash("mss-1", at=5.0, recover_at=10.0),),
            reliable=False,
        )
        sim = fault_sim(plan)
        crashes, recoveries = [], []
        sim.fault_injector.add_crash_listener(crashes.append)
        sim.fault_injector.add_recovery_listener(recoveries.append)
        received = collect(sim, 1, "t.ping")
        sim.scheduler.schedule_at(
            12.0,
            lambda: sim.mss(0).send_fixed("mss-1", "t.ping", "back", "t"),
        )
        sim.drain()
        assert crashes == ["mss-1"]
        assert recoveries == ["mss-1"]
        assert [p for (_, p) in received] == ["back"]
        assert sim.metrics.fault_total("mss.recover") == 1
        assert not sim.mss(1).crashed


class TestInstallation:
    def test_injector_installs_once(self):
        plan = FaultPlan()
        sim = fault_sim(plan)
        with pytest.raises(SimulationError):
            sim.network.install_faults(FaultInjector(plan))

    def test_injector_binds_once(self):
        sim = fault_sim(FaultPlan())
        with pytest.raises(SimulationError):
            sim.fault_injector.bind(sim.network)


class TestDeliveryCap:
    def test_send_to_mh_gives_up_past_attempt_cap(self):
        sim = make_sim(n_mss=2, n_mh=1, mh_delivery_max_attempts=1)
        outcomes = []
        sim.network.send_to_mh(
            "mss-0",
            "mh-0",
            Message(kind="t.m", src="mss-0", dst="mh-0",
                    payload=None, scope="t"),
            on_disconnected=outcomes.append,
        )
        # The MH leaves before the downlink lands; the one allowed
        # attempt is burnt, so the retry gives up instead of looping.
        sim.mh(0).move_to("mss-1")
        sim.drain()
        assert len(outcomes) == 1
        assert outcomes[0].gave_up
        assert outcomes[0].disconnected
        assert sim.metrics.fault_total("send_to_mh.gave_up") == 1

    def test_default_cap_allows_normal_delivery(self):
        sim = make_sim(n_mss=2, n_mh=1)
        delivered = []
        sim.mh(0).register_handler("t.m", delivered.append)
        sim.network.send_to_mh(
            "mss-1",
            "mh-0",
            Message(kind="t.m", src="mss-1", dst="mh-0",
                    payload=None, scope="t"),
        )
        sim.drain()
        assert len(delivered) == 1

    def test_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(mh_delivery_max_attempts=0)
