"""Retransmit backoff shaping: seeded jitter and the max-delay cap.

Un-jittered exponential backoff synchronizes every stranded sender:
after a partition heals they all fire at the same instants, re-creating
the congestion burst the backoff was meant to avoid.  These tests pin
the new ``jitter``/``max_delay`` knobs on :class:`ReliableTransport`
and prove the defaults leave the schedule untouched.
"""

from __future__ import annotations

import random

import pytest

from repro import FaultPlan, LinkFault, Simulation
from repro.errors import SimulationError
from repro.net.messages import Message
from repro.net.reliable import ReliableTransport


def make_transport(**kwargs) -> ReliableTransport:
    sim = Simulation(n_mss=2, n_mh=0, seed=1)
    return ReliableTransport(sim.network, **kwargs)


def test_default_schedule_is_the_plain_exponential():
    transport = make_transport(timeout=4.0, backoff=1.5)
    assert [transport.retransmit_delay(a) for a in range(4)] == [
        4.0, 6.0, 9.0, 13.5,
    ]


def test_max_delay_caps_the_schedule():
    transport = make_transport(timeout=4.0, backoff=2.0, max_delay=10.0)
    assert [transport.retransmit_delay(a) for a in range(5)] == [
        4.0, 8.0, 10.0, 10.0, 10.0,
    ]


def test_jitter_bounds_and_determinism():
    draws_a = [
        make_transport(timeout=4.0, backoff=1.0, jitter=0.25,
                       rng=random.Random(7)).retransmit_delay(0)
        for _ in range(1)
    ]
    transport = make_transport(timeout=4.0, backoff=1.0, jitter=0.25,
                               rng=random.Random(7))
    draws_b = [transport.retransmit_delay(0)]
    assert draws_a == draws_b  # same seed, same jitter draw
    transport = make_transport(timeout=4.0, backoff=1.0, jitter=0.25,
                               rng=random.Random(3))
    for _ in range(200):
        delay = transport.retransmit_delay(0)
        assert 3.0 <= delay <= 5.0  # within +/- 25% of the 4.0 timeout
        assert delay != 4.0  # jitter actually moves the timer


def test_jitter_applies_after_the_cap():
    transport = make_transport(timeout=4.0, backoff=2.0, max_delay=8.0,
                               jitter=0.5, rng=random.Random(11))
    for _ in range(100):
        assert transport.retransmit_delay(10) <= 12.0  # 8.0 * 1.5


def test_zero_jitter_never_consults_the_rng():
    class Exploding(random.Random):
        def random(self):  # pragma: no cover - would fail the test
            raise AssertionError("jitter=0 must not draw randomness")

    transport = make_transport(timeout=4.0, rng=Exploding())
    assert transport.retransmit_delay(2) == 9.0


def test_constructor_validation():
    with pytest.raises(SimulationError, match="jitter"):
        make_transport(jitter=1.0)
    with pytest.raises(SimulationError, match="max_delay"):
        make_transport(timeout=4.0, max_delay=2.0)


def test_fault_plan_threads_the_knobs_to_the_installed_transport():
    plan = FaultPlan(
        link_faults=(LinkFault(drop=0.2),),
        retransmit_timeout=2.0,
        retransmit_jitter=0.1,
        retransmit_max_delay=16.0,
        seed=5,
    )
    sim = Simulation(n_mss=3, n_mh=0, seed=1, fault_plan=plan)
    transport = sim.network.reliable
    assert transport.jitter == 0.1
    assert transport.max_delay == 16.0
    assert transport.timeout == 2.0


def test_jittered_runs_are_seed_deterministic_and_still_deliver():
    """Same plan seed => identical jittered run; delivery still exact."""

    def run():
        plan = FaultPlan(
            link_faults=(LinkFault(drop=0.4, end=30.0),),
            retransmit_timeout=3.0,
            retransmit_jitter=0.3,
            retransmit_max_delay=12.0,
            seed=13,
        )
        sim = Simulation(n_mss=2, n_mh=0, seed=2, fault_plan=plan)
        received = []
        sim.mss(1).register_handler(
            "ping", lambda m: received.append(m.payload)
        )
        for i in range(10):
            sim.scheduler.schedule_at(
                float(i), sim.network.send_fixed,
                Message(kind="ping", src="mss-0", dst="mss-1",
                        payload=i, scope="demo"),
            )
        sim.drain()
        return received, sim.network.reliable.retransmits, sim.now

    first = run()
    second = run()
    assert first == second
    received, retransmits, _ = first
    assert received == list(range(10))  # FIFO exactly-once held
    assert retransmits > 0  # the lossy window really bit


def test_jitter_desynchronizes_a_partition_heal_storm():
    """Many messages stranded by one partition must not all retransmit
    at the same instants once jitter is on."""

    def retransmit_spread(jitter):
        from repro.faults import Partition

        # mss-0 cut off from everyone until t=20.
        plan = FaultPlan(
            partitions=(Partition(groups=(("mss-0",),
                                          ("mss-1", "mss-2", "mss-3")),
                                  start=0.0, end=20.0),),
            retransmit_timeout=4.0,
            retransmit_jitter=jitter,
            seed=3,
        )
        sim = Simulation(n_mss=4, n_mh=0, seed=2, fault_plan=plan)
        times = []
        original = sim.network.reliable._transmit

        def spy(channel, seq, inner, attempt):
            if attempt > 0:
                times.append(sim.now)
            original(channel, seq, inner, attempt)

        sim.network.reliable._transmit = spy
        for mss_id in sim.mss_ids:
            sim.network.mss(mss_id).register_handler(
                "blk", lambda message: None
            )
        for i in range(8):
            sim.network.send_fixed(
                Message(kind="blk", src="mss-0", dst=f"mss-{1 + i % 3}",
                        payload=i, scope="demo")
            )
        sim.drain()
        return times

    synced = retransmit_spread(0.0)
    jittered = retransmit_spread(0.3)
    # Without jitter the 8 first retransmits land on one instant;
    # with it they spread out.
    assert len(set(synced)) < len(set(jittered))
    assert len(set(jittered)) >= 6
