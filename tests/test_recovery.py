"""The ``repro.recovery`` subsystem: policies, the checkpoint store,
trail-walking restores, and the crash-recovery invariant monitors.

The headline property under test is Khatri-style distance-based
checkpointing: the trail a recovery fetch walks can never exceed the
policy's distance bound, so the restore cost depends on how far the
host moved since its last checkpoint -- never on how long the run is.
"""

from __future__ import annotations

import pytest

from repro import FaultPlan, MhCrash, MssCrash, Simulation
from repro.errors import ConfigurationError
from repro.monitor import (
    CrashRecoveryMonitor,
    TokenConservationMonitor,
    replay_events,
)
from repro.net import ConstantLatency, NetworkConfig
from repro.recovery import (
    CheckpointPolicy,
    CounterClient,
    DistancePolicy,
    MutexCheckpointClient,
    NoCheckpointPolicy,
    PerMessagePolicy,
    PeriodicPolicy,
    policy_from_spec,
)
from repro.trace.events import TraceEvent


def make_sim(recovery, plan=None, n_mss=4, n_mh=2, seed=1):
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    return Simulation(
        n_mss=n_mss, n_mh=n_mh, seed=seed, config=config,
        fault_plan=plan, recovery=recovery,
    )


class TestPolicySpec:
    def test_instances_pass_through(self):
        policy = DistancePolicy(3)
        assert policy_from_spec(policy) is policy

    def test_parses_every_spec_form(self):
        assert isinstance(policy_from_spec("none"), NoCheckpointPolicy)
        assert isinstance(
            policy_from_spec("per-message"), PerMessagePolicy
        )
        periodic = policy_from_spec("periodic:7.5")
        assert isinstance(periodic, PeriodicPolicy)
        assert periodic.interval == 7.5
        distance = policy_from_spec("distance:4")
        assert isinstance(distance, DistancePolicy)
        assert distance.distance == 4

    @pytest.mark.parametrize("spec", [
        "distance:x", "distance:", "periodic:abc", "periodic:",
        "bogus", "per-message:3", "none:1", 42,
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            policy_from_spec(spec)

    def test_policy_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DistancePolicy(0)
        with pytest.raises(ConfigurationError):
            PeriodicPolicy(0.0)


class TestPolicies:
    def test_per_message_checkpoints_every_unit(self):
        sim = make_sim("per-message")
        counter = CounterClient(sim.recovery)
        for _ in range(3):
            counter.note_work("mh-0")
        sim.drain()
        assert sim.recovery.checkpoints_taken == 3
        assert sim.recovery.seq_of("mh-0") == 3

    def test_periodic_coalesces_a_burst_into_one_save(self):
        sim = make_sim("periodic:10.0")
        counter = CounterClient(sim.recovery)
        for _ in range(5):
            counter.note_work("mh-0")
        sim.drain()
        assert sim.recovery.checkpoints_taken == 1
        assert counter.work["mh-0"] == 5

    def test_distance_checkpoints_first_progress_then_on_dth_move(self):
        sim = make_sim("distance:2")
        counter = CounterClient(sim.recovery)
        counter.note_work("mh-0")
        sim.drain()
        # The first unit is protected immediately: before it there is
        # nothing to trail back to.
        assert sim.recovery.checkpoints_taken == 1
        counter.note_work("mh-0")
        sim.mh(0).move_to("mss-1")
        sim.drain()
        assert sim.recovery.checkpoints_taken == 1  # 1 move < distance 2
        sim.mh(0).move_to("mss-2")
        sim.drain()
        # The second move hit the bound: a fresh checkpoint was homed
        # at the current cell and the trail restarted.
        assert sim.recovery.checkpoints_taken == 2
        meta = sim.recovery.store("mss-2").meta("mh-0")
        assert meta.home_mss_id == "mss-2"
        assert meta.trail == ()


class TestTrailMechanics:
    def test_payload_stays_home_while_the_meta_walks(self):
        sim = make_sim("distance:10")
        counter = CounterClient(sim.recovery)
        counter.note_work("mh-0")
        sim.drain()
        home = sim.mh(0).current_mss_id
        assert home == "mss-0"
        sim.mh(0).move_to("mss-1")
        sim.drain()
        sim.mh(0).move_to("mss-2")
        sim.drain()
        meta = sim.recovery.store("mss-2").meta("mh-0")
        assert meta.home_mss_id == "mss-0"
        assert meta.trail == ("mss-1", "mss-0")
        # The payload never moved; only the pointer did.
        assert sim.recovery.store("mss-0").payload("mh-0") is not None
        assert sim.recovery.store("mss-1").payload("mh-0") is None
        assert sim.recovery.store("mss-2").payload("mh-0") is None
        assert sim.recovery.store("mss-1").meta("mh-0") is None


class TestRestore:
    def test_crash_and_recover_restores_checkpointed_work(self):
        plan = FaultPlan(
            mh_crashes=(MhCrash("mh-0", at=10.0, recover_at=20.0),),
            seed=1,
        )
        sim = make_sim("per-message", plan)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        sim.scheduler.schedule_at(2.0, counter.note_work, "mh-0")
        sim.drain()
        assert counter.work["mh-0"] == 2
        assert counter.lost["mh-0"] == 0
        assert [(m, seq) for (_, m, seq) in sim.recovery.restored] == \
            [("mh-0", 2)]
        assert sim.metrics.fault_total("recovery.restored") == 1

    def test_work_after_the_last_checkpoint_is_recomputation(self):
        # distance:999 never re-checkpoints, so only the first unit is
        # protected; the other two are the recomputation cost.
        plan = FaultPlan(
            mh_crashes=(MhCrash("mh-0", at=10.0, recover_at=20.0),),
            seed=1,
        )
        sim = make_sim("distance:999", plan)
        counter = CounterClient(sim.recovery)
        for t in (1.0, 2.0, 3.0):
            sim.scheduler.schedule_at(t, counter.note_work, "mh-0")
        sim.drain()
        assert counter.work["mh-0"] == 1
        assert counter.lost["mh-0"] == 2

    def test_restart_from_nothing_without_any_checkpoint(self):
        plan = FaultPlan(
            mh_crashes=(MhCrash("mh-0", at=5.0, recover_at=12.0),),
            seed=1,
        )
        sim = make_sim("none", plan)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        sim.drain()
        assert sim.metrics.fault_total("recovery.no_checkpoint") == 1
        assert [(m, seq) for (_, m, seq) in sim.recovery.restored] == \
            [("mh-0", -1)]
        assert counter.work["mh-0"] == 0
        assert counter.lost["mh-0"] == 1

    def test_checkpoint_lost_when_the_home_station_dies(self):
        plan = FaultPlan(
            crashes=(MssCrash("mss-0", at=8.0),),
            mh_crashes=(MhCrash("mh-0", at=10.0, recover_at=20.0),),
            seed=1,
        )
        sim = make_sim("distance:999", plan)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        sim.scheduler.schedule_at(3.0, sim.mh(0).move_to, "mss-1")
        sim.drain()
        # The checkpoint was homed at mss-0, which is permanently dark
        # when the recovered host comes asking: explicit loss, restart.
        assert sim.metrics.fault_total("recovery.checkpoint_lost") == 1
        assert [(m, seq) for (_, m, seq) in sim.recovery.restored] == \
            [("mh-0", -1)]

    def test_restore_re_homes_the_payload_at_the_requester(self):
        plan = FaultPlan(
            mh_crashes=(
                MhCrash("mh-0", at=16.0, recover_at=26.0),
                MhCrash("mh-0", at=36.0, recover_at=46.0),
            ),
            seed=1,
        )
        sim = make_sim("distance:999", plan)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        sim.scheduler.schedule_at(3.0, sim.mh(0).move_to, "mss-1")
        sim.scheduler.schedule_at(9.0, sim.mh(0).move_to, "mss-2")
        sim.run(until=32.0)
        # First recovery: the fetch walked the trail to mss-0 and the
        # payload was re-homed where the host now lives.
        assert len(sim.recovery.restored) == 1
        assert sim.recovery.store("mss-2").payload("mh-0") is not None
        assert sim.recovery.store("mss-0").payload("mh-0") is None
        cost_first = sim.cost("recovery.restore")
        sim.drain()
        # Second crash without further moves: the fetch is purely local
        # (zero fixed hops), only the wireless restore downlink is paid.
        assert len(sim.recovery.restored) == 2
        second = sim.cost("recovery.restore") - cost_first
        assert 0 < second < cost_first
        assert counter.work["mh-0"] == 1

    def test_amnesiac_crash_still_restores(self):
        # Amnesia wipes the host's own memory, not the fixed network's:
        # the flagged cell vouches, the meta rides the handoff, and the
        # restore proceeds as usual.
        plan = FaultPlan(
            mh_crashes=(
                MhCrash("mh-0", at=10.0, recover_at=20.0, amnesia=True),
            ),
            seed=1,
        )
        sim = make_sim("per-message", plan)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        sim.drain()
        assert counter.work["mh-0"] == 1
        assert [(m, seq) for (_, m, seq) in sim.recovery.restored] == \
            [("mh-0", 1)]


class TestClients:
    def test_mutex_client_resubmits_an_unserved_request(self):
        plan = FaultPlan(
            mh_crashes=(MhCrash("mh-0", at=5.0, recover_at=15.0),),
            seed=1,
        )
        sim = make_sim("per-message", plan)
        resubmitted = []
        client = MutexCheckpointClient(sim.recovery, resubmitted.append)
        sim.scheduler.schedule_at(1.0, client.note_requested, "mh-0")
        sim.drain()
        # The crash hit between request and grant; the restore found
        # the outstanding claim in the checkpoint and resubmitted it.
        assert resubmitted == ["mh-0"]
        assert client.resubmitted == ["mh-0"]
        assert "mh-0" in client.outstanding

    def test_completed_requests_are_not_resubmitted(self):
        plan = FaultPlan(
            mh_crashes=(MhCrash("mh-0", at=5.0, recover_at=15.0),),
            seed=1,
        )
        sim = make_sim("per-message", plan)
        resubmitted = []
        client = MutexCheckpointClient(sim.recovery, resubmitted.append)
        sim.scheduler.schedule_at(1.0, client.note_requested, "mh-0")
        sim.scheduler.schedule_at(2.0, client.note_completed, "mh-0")
        sim.scheduler.schedule_at(3.0, client.note_requested, "mh-0")
        sim.scheduler.schedule_at(3.5, client.note_completed, "mh-0")
        sim.drain()
        # The *latest* checkpoint (seq 4) captured no outstanding
        # request, so recovery resubmits nothing.
        assert resubmitted == []

    def test_duplicate_client_names_are_rejected(self):
        sim = make_sim("none")
        CounterClient(sim.recovery)
        with pytest.raises(ConfigurationError):
            CounterClient(sim.recovery)


class TestRunLengthIndependence:
    """The BENCH_6 property as a unit test: under distance-based
    checkpointing the restore cost is a function of the distance bound,
    not of how long the host has been running and moving."""

    @staticmethod
    def _restore_cost(policy: str, n_moves: int) -> float:
        # Moves are spaced so the migrating meta catches up with the
        # host while it is connected; the crash lands after the last
        # meta arrival, the recovery after the crash window.
        plan = FaultPlan(
            mh_crashes=(
                MhCrash("mh-0", at=10.0 + 6.0 * n_moves,
                        recover_at=20.0 + 6.0 * n_moves),
            ),
            seed=1,
        )
        sim = make_sim(policy, plan, n_mss=4)
        counter = CounterClient(sim.recovery)
        sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
        for i in range(n_moves):
            sim.scheduler.schedule_at(
                3.0 + 6.0 * i, sim.mh(0).move_to, f"mss-{(i + 1) % 4}"
            )
        sim.drain()
        assert len(sim.recovery.restored) == 1
        assert sim.recovery.restored[0][2] > 0  # a real restore
        return sim.cost("recovery.restore")

    def test_distance_bound_makes_cost_independent_of_run_length(self):
        # 5 vs 25 moves: same residue against the distance bound, so
        # the trail at crash time -- and with it the whole restore
        # bill -- is identical no matter how long the host wandered.
        short = self._restore_cost("distance:2", 5)
        long = self._restore_cost("distance:2", 25)
        assert short == long > 0

    def test_without_the_bound_cost_grows_with_the_run(self):
        short = self._restore_cost("distance:999", 5)
        long = self._restore_cost("distance:999", 25)
        assert long > short > 0


# ---------------------------------------------------------------------
# The crash-recovery monitors, driven by synthetic event streams
# ---------------------------------------------------------------------

_IDS = iter(range(1, 10_000)).__next__


def ev(time, etype, scope="S", src=None, dst=None, **detail):
    return TraceEvent(
        id=_IDS(), parent_id=None, time=time, etype=etype,
        scope=scope, category=None, src=src, dst=dst, kind=None,
        detail=detail,
    )


def violated(monitor, events):
    hub = replay_events(events, [monitor])
    return {v.invariant for v in hub.violations}


class TestCrashRecoveryMonitor:
    def test_ghost_entry_is_flagged(self):
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "fault.mh_crash", src="mh-0"),
            ev(2.0, "cs.enter", src="mh-0"),
        ]) >= {"recovery.ghost_entry"}

    def test_unaborted_exit_after_crash_is_flagged(self):
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "cs.enter", src="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(3.0, "cs.exit", src="mh-0"),
        ]) == {"recovery.unaborted_exit"}

    def test_aborted_exit_after_crash_is_the_legal_path(self):
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "cs.enter", src="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(2.0, "cs.exit", src="mh-0", aborted=True,
               reason="mh.crash"),
        ]) == set()

    def test_lingering_occupancy_is_flagged_at_finalize(self):
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "cs.enter", src="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
        ]) == {"recovery.unaborted_occupancy"}

    def test_recovered_host_may_enter_again(self):
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "fault.mh_crash", src="mh-0"),
            ev(2.0, "fault.mh_recover", src="mh-0"),
            ev(3.0, "cs.enter", src="mh-0"),
            ev(4.0, "cs.exit", src="mh-0"),
        ]) == set()

    def test_scopes_are_independent(self):
        # An occupancy in one scope is not confused with another's.
        assert violated(CrashRecoveryMonitor(), [
            ev(1.0, "cs.enter", scope="A", src="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(2.0, "cs.exit", scope="A", src="mh-0", aborted=True),
            ev(3.0, "fault.mh_recover", src="mh-0"),
            ev(4.0, "cs.enter", scope="B", src="mh-0"),
            ev(5.0, "cs.exit", scope="B", src="mh-0"),
        ]) == set()


class TestTokenConservationMonitor:
    def test_token_lost_to_a_crashed_holder(self):
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
        ]) == {"recovery.token_lost"}

    def test_reissue_is_proof_of_life(self):
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(3.0, "r2.token_reissued", src="mss-0"),
        ]) == set()

    def test_regeneration_is_proof_of_life(self):
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(3.0, "r2.regenerate", src="mss-1"),
        ]) == set()

    def test_completed_grant_retires_the_risk(self):
        # The holder finished its access before dying: the token was
        # back with the grantor, nothing was lost.
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "cs.exit", src="mh-0"),
            ev(3.0, "fault.mh_crash", src="mh-0"),
        ]) == set()

    def test_aborted_exit_does_not_retire_the_grant(self):
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(2.0, "cs.exit", src="mh-0", aborted=True),
        ]) == {"recovery.token_lost"}

    def test_fresh_grant_in_the_scope_is_proof_of_life(self):
        assert violated(TokenConservationMonitor(), [
            ev(1.0, "token.grant", src="mss-0", dst="mh-0"),
            ev(2.0, "fault.mh_crash", src="mh-0"),
            ev(3.0, "token.grant", src="mss-0", dst="mh-1"),
        ]) == set()


class TestHandoffCrashRace:
    """A MSS crash racing the MH's handoff must leave exactly one live
    copy of the checkpoint meta somewhere -- never zero (lost pointer)
    and never two (a stale shelf a later fetch could resurrect).

    Timeline with these latencies (fixed 1.0, wireless 0.5, transit
    2.0): move at 3.0 -> join reaches the target at 5.5 -> the handoff
    request reaches the origin at 6.5 (meta popped) -> the reply lands
    back at the target at 7.5 (meta installed).
    """

    def _race(self, *crashes, n_mh=1):
        plan = FaultPlan(
            crashes=tuple(crashes),
            mh_crashes=(MhCrash("mh-0", at=30.0, recover_at=36.0),),
            seed=1,
        )
        sim = make_sim("per-message", plan=plan, n_mh=n_mh)
        counter = CounterClient(sim.recovery)
        counter.note_work("mh-0")
        sim.scheduler.schedule_at(3.0, sim.mh(0).move_to, "mss-1")
        sim.run(until=60.0)
        sim.drain()
        metas = [
            m for m in sim.network.mss_ids()
            if sim.recovery.store(m).meta("mh-0") is not None
        ]
        payloads = [
            m for m in sim.network.mss_ids()
            if sim.recovery.store(m).payload("mh-0") is not None
        ]
        return sim, counter, metas, payloads

    def _assert_one_copy_and_restored(self, sim, counter, metas, payloads):
        assert len(metas) == 1, f"meta copies at {metas}"
        assert len(payloads) == 1, f"payload copies at {payloads}"
        # The crash at 30.0 wiped the live counter; the recovery at
        # 36.0 must find the pointer and reinstate the checkpoint.
        assert [(m, s) for _, m, s in sim.recovery.restored] == [("mh-0", 1)]
        assert counter.work["mh-0"] == 1
        assert counter.lost["mh-0"] == 0

    def test_origin_dark_before_the_request_arrives(self):
        # mss-0 is down 6.0..12.0: the handoff request vanishes at the
        # crashed station; the reliable layer retransmits it until the
        # origin returns, so the meta migrates late but exactly once.
        sim, counter, metas, payloads = self._race(
            MssCrash("mss-0", at=6.0, recover_at=12.0)
        )
        self._assert_one_copy_and_restored(sim, counter, metas, payloads)
        assert metas == ["mss-1"]
        assert payloads == ["mss-1"]  # re-homed by the fetch at 36.0

    def test_origin_dies_with_the_reply_in_flight(self):
        # The origin popped the meta at 6.5 and crashed at 7.0 while
        # the reply travelled: the reply still lands (the wire already
        # carried it), and the origin's later retransmit is a suppressed
        # duplicate, not a second copy.
        sim, counter, metas, payloads = self._race(
            MssCrash("mss-0", at=7.0, recover_at=12.0)
        )
        self._assert_one_copy_and_restored(sim, counter, metas, payloads)
        assert metas == ["mss-1"]

    def test_target_dark_when_the_reply_arrives(self):
        # mss-1 crashes at 7.0 with the reply in flight: the reply is
        # dropped at the dark station and the MH is orphaned into some
        # other cell.  The retransmitted reply eventually lands at the
        # recovered mss-1 -- a station the host abandoned -- and the
        # manager must chase the host with it rather than strand it.
        sim, counter, metas, payloads = self._race(
            MssCrash("mss-1", at=7.0, recover_at=14.0)
        )
        self._assert_one_copy_and_restored(sim, counter, metas, payloads)
        # The single surviving copy sits wherever the host rejoined,
        # not at the abandoned target.
        mh = sim.network.mobile_host("mh-0")
        assert metas == [mh.current_mss_id]
        assert sim.metrics.fault_total("recovery.meta_forwarded") >= 1

    def test_no_crash_control_case(self):
        sim, counter, metas, payloads = self._race()
        self._assert_one_copy_and_restored(sim, counter, metas, payloads)
        assert metas == ["mss-1"]


class TestRecoveryBench:
    """The measured policy benchmark behind `repro compare
    --experiment recovery` (acceptance: distance-based recovery cost is
    independent of run length; eager checkpointing pays per unit)."""

    def test_table_shape_and_headline_claims(self):
        from repro.recovery import run_length_table

        rows = run_length_table()
        by = {(r.policy, r.n_moves): r for r in rows}
        assert len(by) == 6
        # Everyone really recovered from a checkpoint, not from nothing.
        assert all(r.restored_seq > 0 for r in rows)
        # Eager checkpointing: overhead grows with the run...
        assert (by[("per-message", 25)].ckpt_cost
                > 3 * by[("per-message", 5)].ckpt_cost)
        # ...but nothing is ever lost.
        assert by[("per-message", 25)].work_lost == 0
        # Distance-bounded: the restore bill is identical for runs
        # congruent modulo the bound, however much longer one wandered.
        assert (by[("distance:2", 5)].restore_cost
                == by[("distance:2", 25)].restore_cost > 0)
        # And strictly cheaper overhead than eager checkpointing.
        assert (by[("distance:2", 25)].ckpt_cost
                < by[("per-message", 25)].ckpt_cost)

    def test_compare_cli_reports_the_recovery_experiment(self):
        from repro.cli import main

        lines = []
        code = main(
            ["compare", "--experiment", "recovery"], emit=lines.append
        )
        out = "\n".join(lines)
        assert code == 0
        assert "distance-bounded restore cost independent" in out
        assert "OK" in out
