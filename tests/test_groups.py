"""Tests for the three group location management strategies."""

from __future__ import annotations

import pytest

from repro import Category
from repro.analysis import formulas
from repro.errors import ConfigurationError
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)

from conftest import make_sim


def spread_sim(g=4, n_mss=6):
    """Members mh-0..mh-{g-1}, one per cell -- every copy crosses
    cells, matching the paper's accounting."""
    sim = make_sim(n_mss=n_mss, n_mh=g, placement="round_robin")
    members = sim.mh_ids
    return sim, members


class TestPureSearch:
    def test_message_reaches_all_other_members(self):
        sim, members = spread_sim()
        group = PureSearchGroup(sim.network, members)
        group.send("mh-0", "hello")
        sim.drain()
        assert sorted(group.deliveries_of("hello")) == [
            "mh-1", "mh-2", "mh-3"
        ]

    def test_message_cost_matches_formula(self):
        sim, members = spread_sim(g=5, n_mss=8)
        group = PureSearchGroup(sim.network, members)
        before = sim.metrics.snapshot()
        group.send("mh-0", "x")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == \
            formulas.pure_search_message_cost(5, sim.cost_model)
        assert delta.total(Category.SEARCH, group.scope) == 4

    def test_moves_cost_nothing(self):
        sim, members = spread_sim()
        group = PureSearchGroup(sim.network, members)
        before = sim.metrics.snapshot()
        sim.mh(0).move_to("mss-4")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == 0
        assert group.stats.moves == 1

    def test_finds_moved_member(self):
        sim, members = spread_sim()
        group = PureSearchGroup(sim.network, members)
        sim.mh(2).move_to("mss-5")
        sim.drain()
        group.send("mh-0", "after-move")
        sim.drain()
        assert "mh-2" in group.deliveries_of("after-move")

    def test_disconnected_member_counted_missed(self):
        sim, members = spread_sim()
        group = PureSearchGroup(sim.network, members)
        sim.mh(3).disconnect()
        sim.drain()
        group.send("mh-0", "m")
        sim.drain()
        assert group.stats.missed == 1
        assert sorted(group.deliveries_of("m")) == ["mh-1", "mh-2"]

    def test_non_member_cannot_send(self):
        sim = make_sim(n_mss=4, n_mh=5)
        group = PureSearchGroup(sim.network, sim.mh_ids[:4])
        with pytest.raises(ConfigurationError):
            group.send("mh-4", "nope")

    def test_group_needs_two_members(self):
        sim = make_sim(n_mss=2, n_mh=2)
        with pytest.raises(ConfigurationError):
            PureSearchGroup(sim.network, ["mh-0"])


class TestAlwaysInform:
    def test_message_reaches_all_other_members(self):
        sim, members = spread_sim()
        group = AlwaysInformGroup(sim.network, members)
        group.send("mh-1", "hi")
        sim.drain()
        assert sorted(group.deliveries_of("hi")) == [
            "mh-0", "mh-2", "mh-3"
        ]

    def test_message_cost_matches_formula(self):
        sim, members = spread_sim(g=5, n_mss=8)
        group = AlwaysInformGroup(sim.network, members)
        before = sim.metrics.snapshot()
        group.send("mh-0", "x")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == \
            formulas.always_inform_message_cost(5, sim.cost_model)
        assert delta.total(Category.SEARCH, group.scope) == 0

    def test_move_floods_updates_at_message_cost(self):
        sim, members = spread_sim(g=4, n_mss=6)
        group = AlwaysInformGroup(sim.network, members)
        before = sim.metrics.snapshot()
        sim.mh(0).move_to("mss-4")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == \
            formulas.always_inform_message_cost(4, sim.cost_model)
        assert group.stats.moves == 1

    def test_directories_converge_after_move(self):
        sim, members = spread_sim()
        group = AlwaysInformGroup(sim.network, members)
        sim.mh(2).move_to("mss-5")
        sim.drain()
        for member in members:
            assert group.directories[member]["mh-2"] == "mss-5"

    def test_no_search_after_updates_settle(self):
        sim, members = spread_sim()
        group = AlwaysInformGroup(sim.network, members)
        sim.mh(2).move_to("mss-5")
        sim.drain()
        group.send("mh-0", "settled")
        sim.drain()
        assert group.stale_deliveries == 0
        assert "mh-2" in group.deliveries_of("settled")

    def test_stale_entry_falls_back_to_search(self):
        sim, members = spread_sim()
        group = AlwaysInformGroup(sim.network, members)
        # Send while mh-2's move is still in flight.
        sim.mh(2).move_to("mss-5")
        group.send("mh-0", "racing")
        sim.drain()
        assert "mh-2" in group.deliveries_of("racing")
        assert group.stale_deliveries >= 1

    def test_total_cost_over_run_matches_formula(self):
        sim, members = spread_sim(g=4, n_mss=8)
        group = AlwaysInformGroup(sim.network, members)
        before = sim.metrics.snapshot()
        moves, messages = 0, 0
        for step in range(3):
            sim.mh(step).move_to(f"mss-{4 + step}")
            sim.drain()
            moves += 1
            group.send("mh-3", f"m{step}")
            sim.drain()
            messages += 1
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == \
            formulas.always_inform_total_cost(
                4, moves, messages, sim.cost_model
            )
        assert group.stats.moves == moves
        assert group.stats.messages == messages


class TestLocationView:
    def test_initial_view_covers_member_cells(self):
        sim, members = spread_sim(g=4, n_mss=6)
        group = LocationViewGroup(sim.network, members)
        assert group.coordinator_view() == {
            "mss-0", "mss-1", "mss-2", "mss-3"
        }

    def test_message_reaches_all_other_members(self):
        sim, members = spread_sim()
        group = LocationViewGroup(sim.network, members)
        group.send("mh-0", "lv-hello")
        sim.drain()
        assert sorted(group.deliveries_of("lv-hello")) == [
            "mh-1", "mh-2", "mh-3"
        ]

    def test_message_cost_matches_formula(self):
        sim, members = spread_sim(g=5, n_mss=8)
        group = LocationViewGroup(sim.network, members)
        before = sim.metrics.snapshot()
        group.send("mh-0", "x")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.cost(sim.cost_model, group.scope) == \
            formulas.location_view_message_cost(5, 5, sim.cost_model)

    def test_clustered_group_sends_fewer_static_messages(self):
        # All members in one cell: |LV| = 1, so a group message uses no
        # fixed-network traffic at all.
        sim = make_sim(n_mss=6, n_mh=4, placement="single_cell")
        group = LocationViewGroup(sim.network, sim.mh_ids)
        assert group.view_size() == 1
        before = sim.metrics.snapshot()
        group.send("mh-0", "local")
        sim.drain()
        delta = sim.metrics.since(before)
        assert delta.total(Category.FIXED, group.scope) == 0
        assert sorted(group.deliveries_of("local")) == [
            "mh-1", "mh-2", "mh-3"
        ]

    def test_insignificant_move_does_not_change_view(self):
        # mh-0 moves from mss-0 to mss-1 (inside the view) while mh-4
        # also lives in mss-0, so neither add nor delete is needed.
        sim = make_sim(n_mss=6, n_mh=5, placement="round_robin")
        members = sim.mh_ids  # mh-4 shares mss-0 ... wait: 5 MHs, 6 MSS
        # round robin puts mh-0..mh-4 in mss-0..mss-4; put mh-4 with
        # mh-0 instead:
        sim2 = make_sim(n_mss=6, n_mh=5, placement=[0, 1, 2, 3, 0])
        group = LocationViewGroup(sim2.network, sim2.mh_ids)
        view_before = group.coordinator_view()
        group_scope_before = sim2.metrics.total(
            Category.FIXED, group.scope
        )
        sim2.mh(0).move_to("mss-1")
        sim2.drain()
        assert group.coordinator_view() == view_before
        assert group.stats.significant_moves == 0
        # Only the move notice crossed the static network.
        assert sim2.metrics.total(Category.FIXED, group.scope) == \
            group_scope_before + 1

    def test_move_to_new_cell_adds_to_view(self):
        sim, members = spread_sim(g=3, n_mss=6)
        group = LocationViewGroup(sim.network, members)
        sim.mh(0).move_to("mss-5")
        sim.drain()
        # mss-0 lost its only member, mss-5 gained one: combined change.
        assert group.coordinator_view() == {"mss-1", "mss-2", "mss-5"}
        assert group.stats.significant_moves == 1

    def test_all_copies_converge_after_significant_moves(self):
        sim, members = spread_sim(g=4, n_mss=8)
        group = LocationViewGroup(sim.network, members)
        sim.mh(0).move_to("mss-6")
        sim.drain()
        sim.mh(1).move_to("mss-7")
        sim.drain()
        expected = group.coordinator_view()
        for mss_id in expected:
            assert group.view_copies[mss_id] == expected

    def test_update_cost_within_paper_bound(self):
        sim, members = spread_sim(g=4, n_mss=8)
        group = LocationViewGroup(sim.network, members)
        lv_before = group.view_size()
        before = sim.metrics.snapshot()
        sim.mh(0).move_to("mss-6")  # significant (add + delete)
        sim.drain()
        delta = sim.metrics.since(before)
        bound = formulas.location_view_update_cost_bound(
            lv_before + 1, sim.cost_model
        )
        assert delta.cost(sim.cost_model, group.scope) <= bound

    def test_delivery_after_significant_move(self):
        sim, members = spread_sim()
        group = LocationViewGroup(sim.network, members)
        sim.mh(2).move_to("mss-5")
        sim.drain()
        group.send("mh-0", "post-move")
        sim.drain()
        assert "mh-2" in group.deliveries_of("post-move")

    def test_sender_in_fresh_cell_can_send(self):
        sim, members = spread_sim()
        group = LocationViewGroup(sim.network, members)
        sim.mh(0).move_to("mss-4")
        sim.drain()
        group.send("mh-0", "from-new-cell")
        sim.drain()
        assert sorted(group.deliveries_of("from-new-cell")) == [
            "mh-1", "mh-2", "mh-3"
        ]

    def test_members_spend_no_energy_on_location_updates(self):
        sim, members = spread_sim()
        group = LocationViewGroup(sim.network, members)
        energy_before = {m: sim.metrics.energy(m) for m in members}
        sim.mh(0).move_to("mss-5")
        sim.drain()
        # Only the mobility-protocol leave/join cost energy at mh-0; the
        # view update itself is entirely on the static network.
        for member in members[1:]:
            assert sim.metrics.energy(member) == energy_before[member]

    def test_max_view_size_tracked(self):
        sim, members = spread_sim(g=3, n_mss=8)
        group = LocationViewGroup(sim.network, members)
        assert group.max_view_size == 3
        sim.mh(0).move_to("mss-7")
        sim.drain()
        assert group.max_view_size == 3  # combined add+delete: size kept


class TestLocationViewBounceRaces:
    """Regressions for stale-message races found by seed-sweep fuzzing."""

    def test_stale_move_notice_does_not_wipe_returned_member(self):
        # mh-0 bounces mss-0 -> mss-1 -> mss-0 so fast that the notice
        # for the first departure reaches mss-0 *after* it has come
        # back.  The notice must not wipe the fresh local entry.
        sim = make_sim(n_mss=4, n_mh=3, placement="round_robin",
                       transit_time=0.1, fixed_latency=5.0,
                       wireless_latency=0.05)
        group = LocationViewGroup(sim.network, sim.mh_ids)
        sim.mh(0).move_to("mss-1")
        sim.run(until=sim.now + 0.3)
        sim.mh(0).move_to("mss-0")
        sim.drain()
        assert "mh-0" in group.local_members["mss-0"]
        group.send("mh-1", "after-bounce")
        sim.drain()
        assert "mh-0" in group.deliveries_of("after-bounce")

    def test_coordinator_readding_own_cell_keeps_concurrent_updates(self):
        # When the coordinator's own cell re-enters the view, it must
        # not overwrite its authoritative copy with a stale snapshot.
        sim = make_sim(n_mss=5, n_mh=3, placement=[0, 1, 2])
        group = LocationViewGroup(sim.network, sim.mh_ids,
                                  coordinator_mss_id="mss-0")
        # mh-0 (sole member at the coordinator's cell) leaves: delete.
        sim.mh(0).move_to("mss-3")
        sim.drain()
        assert "mss-0" not in group.coordinator_view()
        # ...and returns: the coordinator cell is re-added.
        sim.mh(0).move_to("mss-0")
        sim.drain()
        view = group.coordinator_view()
        assert view == {"mss-0", "mss-1", "mss-2"}
        for mss_id in view:
            assert group.view_copies[mss_id] == view
