"""Tests for Algorithm L2: two-tier Lamport mutual exclusion."""

from __future__ import annotations

import pytest

from repro import Category, CriticalResource, L2Mutex
from repro.analysis import formulas

from conftest import make_sim


def build_l2(n_mss=4, n_mh=8, **kwargs):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, **kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    return sim, resource, mutex


def test_single_request_grants_and_releases():
    sim, resource, mutex = build_l2()
    mutex.request("mh-0")
    sim.drain()
    assert resource.access_count == 1
    assert [mh for (_, mh) in mutex.completed] == ["mh-0"]


def test_execution_cost_matches_paper_formula_when_mh_moves():
    """The paper's accounting assumes the requester moved, so the grant
    needs a search and the release a fixed relay: total
    3*C_w + C_f + C_s + 3*(M-1)*C_f."""
    sim, resource, mutex = build_l2(n_mss=5)
    costs = sim.cost_model
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.mh(0).move_to("mss-2")  # leave immediately after the init
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.cost(costs, "L2") == formulas.l2_execution_cost(5, costs)
    assert delta.total(Category.WIRELESS, "L2") == \
        formulas.l2_wireless_message_count()
    assert delta.total(Category.SEARCH, "L2") == formulas.l2_search_count()
    assert delta.total(Category.FIXED, "L2") == \
        formulas.l2_fixed_message_count(5)
    assert resource.access_count == 1


def test_stationary_requester_is_even_cheaper_than_formula():
    """When the MH does not move, locality removes the search and the
    relay -- our implementation exploits what the paper's worst-case
    accounting charges unconditionally."""
    sim, resource, mutex = build_l2(n_mss=5)
    costs = sim.cost_model
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.total(Category.SEARCH, "L2") == 0
    assert delta.cost(costs, "L2") < formulas.l2_execution_cost(5, costs)


def test_requester_energy_is_three_wireless_messages():
    sim, resource, mutex = build_l2()
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.drain()
    delta = sim.metrics.since(before)
    assert delta.energy("mh-0") == formulas.l2_energy_per_request()
    # No other MH spends any energy -- L1's drawback removed.
    for mh_id in sim.mh_ids[1:]:
        assert delta.energy(mh_id) == 0


def test_cost_constant_in_n():
    results = {}
    for n_mh in (4, 16):
        sim, resource, mutex = build_l2(n_mss=4, n_mh=n_mh)
        before = sim.metrics.snapshot()
        mutex.request("mh-0")
        sim.drain()
        results[n_mh] = sim.metrics.since(before).cost(
            sim.cost_model, "L2"
        )
    assert results[4] == results[16]


def test_concurrent_requests_safe_and_all_served():
    sim, resource, mutex = build_l2(n_mss=4, n_mh=8)
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    assert resource.access_count == 8
    resource.assert_no_overlap()


def test_grants_follow_init_timestamp_order():
    """If ts(request(h1)) < ts(request(h2)), h1 is granted first."""
    sim, resource, mutex = build_l2(n_mss=4, n_mh=8)
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    granted_ts = [ts for (ts, _) in mutex.grant_log]
    assert granted_ts == sorted(granted_ts)


def test_mhs_keep_no_queue_and_nonparticipants_idle():
    sim, resource, mutex = build_l2()
    mutex.request("mh-0")
    sim.drain()
    # All queue state lives at the MSSs.
    for mss_id in sim.mss_ids:
        assert mutex.node(mss_id).queue_size == 0  # drained after release


class TestDisconnection:
    def test_disconnect_before_grant_aborts_request(self):
        sim, resource, mutex = build_l2(n_mss=4, n_mh=4)
        mutex.request("mh-0")
        mutex.request("mh-1")
        # mh-0 disconnects right away, before any grant can arrive.
        sim.mh(0).disconnect()
        sim.drain()
        # mh-0's request was dropped; mh-1 still got the region.
        assert [mh for (_, mh) in mutex.aborted] == ["mh-0"]
        assert "mh-1" in resource.holders_in_order()
        assert "mh-0" not in resource.holders_in_order()
        resource.assert_no_overlap()

    def test_disconnect_after_grant_requires_reconnect_to_release(self):
        sim, resource, mutex = build_l2(n_mss=4, n_mh=4)
        mutex.request("mh-0")
        mutex.request("mh-1")
        sim.run(until=3.0)  # grant reaches mh-0; it is inside the region
        assert resource.holder == "mh-0"
        sim.mh(0).disconnect()
        sim.drain()
        # mh-1 cannot proceed until mh-0 reconnects and releases.
        assert resource.holder is None or resource.holder == "mh-0"
        assert len(mutex.completed) == 0
        sim.mh(0).reconnect("mss-2")
        sim.drain()
        assert [mh for (_, mh) in mutex.completed] == ["mh-0", "mh-1"]
        resource.assert_no_overlap()

    def test_disconnect_of_bystander_is_harmless(self):
        sim, resource, mutex = build_l2(n_mss=4, n_mh=4)
        sim.mh(3).disconnect()
        sim.drain()
        mutex.request("mh-0")
        sim.drain()
        assert resource.access_count == 1


def test_requests_from_same_mss_for_different_mhs():
    sim, resource, mutex = build_l2(n_mss=2, n_mh=4,
                                    placement="single_cell")
    mutex.request("mh-0")
    mutex.request("mh-1")
    sim.drain()
    assert resource.access_count == 2
    resource.assert_no_overlap()


def test_moving_requester_between_init_and_grant_is_found():
    sim, resource, mutex = build_l2(n_mss=6, n_mh=6)
    mutex.request("mh-0")
    sim.mh(0).move_to("mss-3")
    sim.drain()
    assert resource.access_count == 1
    # The release was relayed from mss-3 back to the proxy mss-0.
    assert [mh for (_, mh) in mutex.completed] == ["mh-0"]
