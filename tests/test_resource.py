"""Unit tests for the critical-region safety oracle."""

from __future__ import annotations

import pytest

from repro.errors import MutualExclusionViolation
from repro.mutex import CriticalResource
from repro.sim import Scheduler


def test_single_holder_allowed():
    resource = CriticalResource(Scheduler())
    resource.enter("a")
    resource.leave("a")
    assert resource.access_count == 1
    assert resource.holder is None


def test_concurrent_enter_raises():
    resource = CriticalResource(Scheduler())
    resource.enter("a")
    with pytest.raises(MutualExclusionViolation):
        resource.enter("b")


def test_violation_counted_when_not_raising():
    resource = CriticalResource(Scheduler(), raise_on_violation=False)
    resource.enter("a")
    resource.enter("b")
    assert resource.violations == 1


def test_leave_by_non_holder_raises():
    resource = CriticalResource(Scheduler())
    resource.enter("a")
    with pytest.raises(MutualExclusionViolation):
        resource.leave("b")


def test_access_log_records_times():
    sched = Scheduler()
    resource = CriticalResource(sched)
    sched.schedule(1.0, resource.enter, "a")
    sched.schedule(3.0, resource.leave, "a")
    sched.drain()
    record = resource.accesses[0]
    assert record.enter_time == 1.0
    assert record.exit_time == 3.0


def test_holders_in_order():
    resource = CriticalResource(Scheduler())
    for holder in ["x", "y", "z"]:
        resource.enter(holder)
        resource.leave(holder)
    assert resource.holders_in_order() == ["x", "y", "z"]


def test_assert_no_overlap_passes_on_clean_log():
    sched = Scheduler()
    resource = CriticalResource(sched)
    for t, holder in [(1.0, "a"), (5.0, "b")]:
        sched.schedule(t, resource.enter, holder)
        sched.schedule(t + 1.0, resource.leave, holder)
    sched.drain()
    resource.assert_no_overlap()


def test_assert_no_overlap_detects_forged_log():
    sched = Scheduler()
    resource = CriticalResource(sched, raise_on_violation=False)
    resource.enter("a")
    resource.enter("b")  # counted, not raised
    resource.leave("b")
    with pytest.raises(MutualExclusionViolation):
        resource.assert_no_overlap()


def test_info_recorded():
    resource = CriticalResource(Scheduler())
    resource.enter("a", info={"ts": 7})
    assert resource.accesses[0].info == {"ts": 7}
