"""FaultPlan validation hardening and serialization round-trips.

The plan is the declarative surface of the whole fault subsystem (CLI
``--fault-plan``, scenario specs), so malformed input must fail with an
error that names the offending entry, and every plan -- every fault
type, every knob -- must survive ``to_dict`` -> JSON -> ``from_dict``
unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro import FaultPlan, LinkFault, MhCrash, MssCrash
from repro.errors import ConfigurationError
from repro.faults import Partition


def full_plan() -> FaultPlan:
    """One plan exercising every fault type and every scalar knob."""
    return FaultPlan(
        link_faults=(
            LinkFault(drop=0.1, duplicate=0.05, extra_delay=2.0,
                      src="mss-0", dst="mss-1", start=5.0, end=50.0),
            LinkFault(drop=0.2),
        ),
        partitions=(
            Partition(groups=(("mss-0", "mss-1"), ("mss-2",)),
                      start=10.0, end=30.0),
        ),
        crashes=(
            MssCrash("mss-1", at=20.0, recover_at=60.0),
            MssCrash("mss-2", at=25.0),
        ),
        mh_crashes=(
            MhCrash("mh-0", at=15.0, recover_at=40.0),
            MhCrash("mh-1", at=18.0, recover_at=44.0, amnesia=True),
            MhCrash("mh-2", at=70.0),
        ),
        seed=99,
        reliable=True,
        rejoin_delay=3.0,
        retransmit_timeout=2.0,
        retransmit_backoff=2.0,
        max_retransmits=7,
        retransmit_jitter=0.25,
        retransmit_max_delay=30.0,
    )


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


def test_full_round_trip_through_json():
    plan = full_plan()
    rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert rebuilt == plan


def test_round_trip_preserves_mh_crash_amnesia():
    plan = full_plan()
    rebuilt = FaultPlan.from_json(json.dumps(plan.to_dict()))
    amnesia = {c.mh_id: c.amnesia for c in rebuilt.mh_crashes}
    assert amnesia == {"mh-0": False, "mh-1": True, "mh-2": False}


def test_default_plan_round_trips():
    plan = FaultPlan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_accepts_empty_object():
    assert FaultPlan.from_dict({}) == FaultPlan()


# ----------------------------------------------------------------------
# Unknown keys -- top level and nested, with the entry named
# ----------------------------------------------------------------------


def test_unknown_top_level_key():
    with pytest.raises(ConfigurationError, match="unknown fault plan"):
        FaultPlan.from_dict({"lnik_faults": []})


def test_unknown_key_in_link_fault_names_the_entry():
    with pytest.raises(ConfigurationError,
                       match=r"link_faults\[1\].*dorp"):
        FaultPlan.from_dict(
            {"link_faults": [{"drop": 0.1}, {"dorp": 0.2}]}
        )


def test_unknown_key_in_mss_crash_names_the_entry():
    with pytest.raises(ConfigurationError, match=r"crashes\[0\].*when"):
        FaultPlan.from_dict({"crashes": [{"mss_id": "mss-0", "when": 3}]})


def test_unknown_key_in_mh_crash_names_the_entry():
    with pytest.raises(ConfigurationError,
                       match=r"mh_crashes\[0\].*amnesiac"):
        FaultPlan.from_dict(
            {"mh_crashes": [{"mh_id": "mh-0", "at": 1.0,
                             "amnesiac": True}]}
        )


def test_unknown_key_in_partition_names_the_entry():
    with pytest.raises(ConfigurationError,
                       match=r"partitions\[0\].*sides"):
        FaultPlan.from_dict({"partitions": [{"sides": [["mss-0"]]}]})


def test_missing_required_field_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match=r"crashes\[0\]"):
        FaultPlan.from_dict({"crashes": [{"at": 3.0}]})


def test_non_object_entry_is_a_configuration_error():
    with pytest.raises(ConfigurationError,
                       match=r"link_faults\[0\] must be an object"):
        FaultPlan.from_dict({"link_faults": ["drop"]})


def test_non_list_fault_list_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="must be a list"):
        FaultPlan.from_dict({"crashes": {"mss_id": "mss-0", "at": 1.0}})


def test_non_object_plan_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="JSON object"):
        FaultPlan.from_dict([1, 2, 3])


# ----------------------------------------------------------------------
# Malformed and inverted windows
# ----------------------------------------------------------------------


def test_inverted_link_fault_window():
    with pytest.raises(ConfigurationError, match="inverted"):
        FaultPlan.from_dict(
            {"link_faults": [{"drop": 0.1, "start": 10.0, "end": 5.0}]}
        )


def test_inverted_partition_window():
    with pytest.raises(ConfigurationError,
                       match=r"partitions\[0\].*inverted"):
        FaultPlan.from_dict(
            {"partitions": [{"groups": [["mss-0"], ["mss-1"]],
                             "start": 9.0, "end": 9.0}]}
        )


def test_inverted_mss_crash_window():
    with pytest.raises(ConfigurationError, match="inverted"):
        FaultPlan.from_dict(
            {"crashes": [{"mss_id": "mss-0", "at": 8.0,
                          "recover_at": 2.0}]}
        )


def test_inverted_mh_crash_window():
    with pytest.raises(ConfigurationError,
                       match=r"mh_crashes\[0\].*inverted"):
        FaultPlan.from_dict(
            {"mh_crashes": [{"mh_id": "mh-0", "at": 8.0,
                             "recover_at": 8.0}]}
        )


def test_non_numeric_window_is_a_clear_error():
    with pytest.raises(ConfigurationError, match="must be a number"):
        FaultPlan.from_dict(
            {"crashes": [{"mss_id": "mss-0", "at": "soon"}]}
        )


def test_non_numeric_link_fault_field():
    with pytest.raises(ConfigurationError, match="must be a number"):
        FaultPlan.from_dict({"link_faults": [{"extra_delay": "lots"}]})


def test_boolean_is_not_a_number():
    with pytest.raises(ConfigurationError, match="must be a number"):
        MssCrash("mss-0", at=True)


def test_non_boolean_amnesia_is_a_clear_error():
    with pytest.raises(ConfigurationError, match="amnesia"):
        FaultPlan.from_dict(
            {"mh_crashes": [{"mh_id": "mh-0", "at": 1.0,
                             "amnesia": "yes"}]}
        )


def test_negative_start_is_rejected():
    with pytest.raises(ConfigurationError, match="nonnegative"):
        LinkFault(drop=0.1, start=-1.0)


def test_partition_group_members_must_be_strings():
    with pytest.raises(ConfigurationError, match="id strings"):
        FaultPlan.from_dict({"partitions": [{"groups": [[0, 1]]}]})


# ----------------------------------------------------------------------
# The new retransmit knobs
# ----------------------------------------------------------------------


def test_retransmit_jitter_must_be_a_fraction():
    with pytest.raises(ConfigurationError, match="retransmit_jitter"):
        FaultPlan(retransmit_jitter=1.5)


def test_retransmit_max_delay_must_cover_the_timeout():
    with pytest.raises(ConfigurationError, match="retransmit_max_delay"):
        FaultPlan(retransmit_timeout=4.0, retransmit_max_delay=1.0)


def test_new_knobs_round_trip_from_json_text():
    plan = FaultPlan.from_json(
        '{"retransmit_jitter": 0.2, "retransmit_max_delay": 64.0}'
    )
    assert plan.retransmit_jitter == 0.2
    assert plan.retransmit_max_delay == 64.0
