"""The checked-in ``docs/walkthroughs/`` pages must regenerate
byte-identically (CI regenerates them and fails on any diff)."""

from __future__ import annotations

import os

import pytest

from repro.trace.walkthroughs import (
    GENERATED_BANNER,
    PAGES,
    render_all,
)

DOCS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "walkthroughs",
)

RENDERED = render_all()


def test_page_set_is_complete():
    assert set(RENDERED) == set(PAGES) | {"index.md"}
    on_disk = {name for name in os.listdir(DOCS_DIR)
               if name.endswith(".md")}
    assert on_disk == set(RENDERED)


@pytest.mark.parametrize("filename", sorted(render_all()))
def test_checked_in_page_matches_fresh_render(filename):
    with open(os.path.join(DOCS_DIR, filename), encoding="utf-8") as fh:
        assert fh.read() == RENDERED[filename], (
            f"{filename} is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_walkthroughs.py`"
        )


@pytest.mark.parametrize("filename", sorted(render_all()))
def test_pages_carry_the_generated_banner(filename):
    assert RENDERED[filename].startswith(GENERATED_BANNER)


def test_pages_embed_diagrams_tables_and_costs():
    for filename, content in RENDERED.items():
        if filename == "index.md":
            continue
        assert "```mermaid" in content, filename
        assert "| # | t | event |" in content, filename
        assert "Cost summary" in content, filename


def test_truncation_is_never_silent():
    # The long crash-recovery trace overflows the table cap; the page
    # must say how many events were cut and how to get the full trace.
    page = RENDERED["r2_crash_recovery.md"]
    assert "further events omitted" in page
    assert "repro trace --scenario r2_crash_recovery" in page


def test_index_links_every_page():
    index = RENDERED["index.md"]
    for filename in PAGES:
        assert f"({filename})" in index
