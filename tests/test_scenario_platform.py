"""The scenario platform itself: loader validation, registry, runner.

The pack's certification lives in test_scenario_pack.py; these tests
pin the platform's contracts -- that malformed specs fail with located
errors, that the registry answers tag queries, that the runner's
expectation engine actually fails bad runs, and that the CLI wires it
all together.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    ScenarioRegistry,
    builtin_registry,
    load_spec,
    run_scenario,
)


def minimal(**overrides):
    data = {
        "name": "t",
        "duration": 60.0,
        "workload": {"kind": "mutex", "algorithm": "L2",
                     "request_rate": 0.05},
    }
    data.update(overrides)
    return data


# ----------------------------------------------------------------------
# Loader validation: every error names the scenario and the bad key.
# ----------------------------------------------------------------------


def test_load_spec_fills_defaults():
    spec = load_spec(minimal())
    assert spec.n_mss == 4 and spec.n_mh == 8
    assert spec.workload["cs_duration"] == 1.0
    assert spec.monitors == {} and spec.expect == {}


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        ({"name": None}, "nonempty string 'name'"),
        ({"bogus": 1}, "unknown keys ['bogus']"),
        ({"n_mss": 0}, "n_mss must be >= 1"),
        ({"duration": -5}, "duration"),
        ({"tags": "chaos"}, "tags must be a list"),
        ({"workload": {"kind": "nope"}}, "workload.kind"),
        ({"workload": {"kind": "mutex", "algorithm": "L9"}},
         "workload.algorithm"),
        ({"workload": {"kind": "mutex", "algorithm": "L1",
                       "request_rate": 0.1}},
         "not supported for L1"),
        ({"workload": {"kind": "mutex", "malicious_mhs": [0]}},
         "requires an R2-family"),
        ({"workload": {"kind": "groups", "group_size": 1}},
         "group_size"),
        ({"mobility": {"kind": "warp", "rate": 1.0}}, "mobility.kind"),
        ({"mobility": {"kind": "uniform"}}, "mobility.rate"),
        ({"disconnects": {"rate": 0.1}}, "disconnects.downtime"),
        ({"events": [{"kind": "teleport", "at": 1.0}]},
         "events[0].kind"),
        ({"events": [{"kind": "move", "at": 1.0, "mh": 99, "cell": 0}]},
         "events[0].mh 99 out of range"),
        ({"events": [{"kind": "converge", "at": 1.0, "cell": 9}]},
         "events[0].cell 9 out of range"),
        ({"events": [{"kind": "set_rate", "at": 1.0}]},
         "set_rate needs"),
        ({"monitors": {"request_deadline": "soon"}},
         "monitors.request_deadline"),
        ({"expect": {"min_happiness": 3}}, "expect has unknown keys"),
        ({"faults": {"link_faults": [{"drop": 2.0}]}}, "faults"),
    ],
)
def test_load_spec_rejects_with_located_errors(mutation, fragment):
    with pytest.raises(ConfigurationError) as err:
        load_spec(minimal(**mutation))
    assert fragment in str(err.value)


def test_request_events_need_a_mutex_workload():
    with pytest.raises(ConfigurationError) as err:
        load_spec(minimal(
            workload={"kind": "none"},
            events=[{"kind": "request", "at": 5.0, "mh": 0}],
        ))
    assert "'request' events need a mutex workload" in str(err.value)


def test_fault_errors_carry_the_scenario_name():
    with pytest.raises(ConfigurationError) as err:
        load_spec(minimal(
            faults={"crashes": [{"mss_id": "mss-0", "at": 50.0,
                                 "recover_at": 10.0}]},
        ))
    message = str(err.value)
    assert "scenario 't'" in message
    assert "inverted or empty" in message


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_tag_queries_and_misses():
    registry = ScenarioRegistry([
        load_spec(minimal(name="a", tags=["chaos"])),
        load_spec(minimal(name="b", tags=["chaos", "crash"])),
        load_spec(minimal(name="c")),
    ])
    assert registry.names() == ["a", "b", "c"]
    assert registry.names("chaos") == ["a", "b"]
    assert registry.tags() == ["chaos", "crash"]
    assert "a" in registry and "z" not in registry
    with pytest.raises(KeyError) as err:
        registry.get("z")
    assert "options: a, b, c" in str(err.value)


def test_registry_rejects_duplicate_names():
    registry = ScenarioRegistry([load_spec(minimal(name="a"))])
    with pytest.raises(ConfigurationError, match="duplicate"):
        registry.register(load_spec(minimal(name="a")))


def test_builtin_registry_is_cached():
    assert builtin_registry() is builtin_registry()


# ----------------------------------------------------------------------
# Runner: scheduled events, expectations, determinism
# ----------------------------------------------------------------------


def test_scheduled_requests_and_moves_run():
    spec = load_spec(minimal(
        n_mh=4,
        workload={"kind": "mutex", "algorithm": "L2"},
        events=[
            {"kind": "request", "at": 5.0, "mh": 0},
            {"kind": "request", "at": 10.0, "mh": 1},
            {"kind": "move", "at": 7.0, "mh": 0, "cell": 2},
        ],
        expect={"min_accesses": 2, "all_requests_served": True},
    ))
    result = run_scenario(spec, seed=3)
    assert result.ok, result.failures
    # Two scheduled requests plus the Poisson arrivals all completed.
    assert result.report["workload"]["completed"] >= 2


def test_failed_expectation_fails_the_run():
    spec = load_spec(minimal(expect={"min_accesses": 10_000}))
    result = run_scenario(spec, seed=3)
    assert not result.ok
    assert any("region accesses" in f for f in result.failures)
    # A missed expectation is not an invariant violation.
    assert result.report["monitors"]["ok"]


def test_min_faults_expectation_fails_without_faults():
    spec = load_spec(minimal(
        expect={"min_faults": {"mss.crash": 1}},
    ))
    result = run_scenario(spec, seed=3)
    assert not result.ok
    assert any("mss.crash" in f for f in result.failures)


def test_runs_are_deterministic_per_seed():
    spec = builtin_registry().get("partition_heal_storm")
    a = run_scenario(spec, seed=11)
    b = run_scenario(spec, seed=11)
    for key in ("messages", "cost", "faults", "workload",
                "final_time"):
        assert a.report[key] == b.report[key], key
    assert a.events == b.events


def test_mass_disconnect_event_reconnects_everyone():
    # Fault-tolerant R2 (plan installed): a request pending across the
    # tunnel is deferred and served after the reconnect wave, so the
    # workload balances exactly -- the pack's tunnel scenarios rely on
    # this same contract.
    spec = load_spec(minimal(
        duration=120.0,
        workload={"kind": "mutex", "algorithm": "R2'",
                  "request_rate": 0.05, "token_timeout": 40.0},
        faults={"seed": 5},
        events=[{"kind": "mass_disconnect", "at": 30.0,
                 "fraction": 1.0, "downtime": 20.0,
                 "reconnect_spread": 5.0}],
    ))
    result = run_scenario(spec, seed=5)
    stats = result.report["workload"]
    assert stats["completed"] == stats["issued"]
    assert result.ok, result.failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_scenarios_list(capsys):
    from repro.cli import main

    lines = []
    assert main(["scenarios", "--list", "--tag", "adversarial"],
                emit=lines.append) == 0
    assert any("adversarial_r2pp" in line for line in lines)


def test_cli_scenarios_run_with_reports(tmp_path):
    from repro.cli import main

    lines = []
    code = main(
        ["scenarios", "--scenario", "quiet_baseline",
         "--seeds", "7,19", "--report-dir", str(tmp_path)],
        emit=lines.append,
    )
    assert code == 0
    out = "\n".join(lines)
    assert "certified" in out
    for seed in (7, 19):
        path = tmp_path / f"quiet_baseline-seed{seed}.json"
        report = json.loads(path.read_text())
        assert report["seed"] == seed
        assert report["monitors"]["ok"]


def test_cli_scenarios_runs_a_spec_file(tmp_path):
    from repro.cli import main

    path = tmp_path / "my.json"
    path.write_text(json.dumps(minimal(name="my")))
    lines = []
    assert main(["scenarios", "--file", str(path)],
                emit=lines.append) == 0
    assert any("my" in line for line in lines)


def test_cli_scenarios_rejects_unknowns():
    from repro.cli import main

    with pytest.raises(SystemExit, match="unknown scenario"):
        main(["scenarios", "--scenario", "nope"], emit=lambda _: None)
    with pytest.raises(SystemExit, match="no scenario carries tag"):
        main(["scenarios", "--tag", "nope"], emit=lambda _: None)
    with pytest.raises(SystemExit, match="comma-separated"):
        main(["scenarios", "--seeds", "x,y"], emit=lambda _: None)
