"""Unit tests for the cost model and metrics collector."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.metrics import Category, CostModel, MetricsCollector


class TestCostModel:
    def test_defaults_satisfy_model_constraints(self):
        c = CostModel()
        assert c.c_search >= c.c_fixed

    def test_search_below_fixed_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(c_fixed=5.0, c_search=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(c_wireless=-1.0)

    def test_mh_to_mh_cost(self):
        c = CostModel(c_fixed=1, c_wireless=5, c_search=10)
        assert c.mh_to_mh() == 20.0

    def test_mss_to_remote_mh_cost(self):
        c = CostModel(c_fixed=1, c_wireless=5, c_search=10)
        assert c.mss_to_remote_mh() == 15.0

    def test_worst_case_search(self):
        c = CostModel(c_fixed=2.0, c_search=10.0)
        assert c.worst_case_search(6) == 10.0

    def test_worst_case_search_rejects_empty_network(self):
        with pytest.raises(ConfigurationError):
            CostModel().worst_case_search(0)


class TestMetricsCollector:
    def test_counts_by_category(self):
        m = MetricsCollector()
        m.record_fixed("a")
        m.record_fixed("a")
        m.record_wireless_tx("mh-1", "a")
        m.record_search("b")
        assert m.total(Category.FIXED) == 2
        assert m.total(Category.WIRELESS) == 1
        assert m.total(Category.SEARCH) == 1
        assert m.total(Category.FIXED, "a") == 2
        assert m.total(Category.FIXED, "b") == 0

    def test_energy_tracks_tx_and_rx_per_mh(self):
        m = MetricsCollector()
        m.record_wireless_tx("mh-1")
        m.record_wireless_rx("mh-1")
        m.record_wireless_rx("mh-2")
        assert m.energy("mh-1") == 2
        assert m.energy("mh-2") == 1
        assert m.energy() == 3

    def test_cost_weights_categories(self):
        m = MetricsCollector()
        c = CostModel(c_fixed=1, c_wireless=5, c_search=10)
        m.record_fixed()
        m.record_wireless_tx("mh-1")
        m.record_search()
        m.record_search_probe(count=3)
        assert m.cost(c) == 1 + 5 + 10 + 3

    def test_cost_scoped(self):
        m = MetricsCollector()
        c = CostModel(c_fixed=1, c_wireless=5, c_search=10)
        m.record_fixed("x")
        m.record_fixed("y")
        assert m.cost(c, "x") == 1.0

    def test_snapshot_is_immutable_copy(self):
        m = MetricsCollector()
        m.record_fixed()
        snap = m.snapshot()
        m.record_fixed()
        assert snap.total(Category.FIXED) == 1
        assert m.total(Category.FIXED) == 2

    def test_since_returns_delta(self):
        m = MetricsCollector()
        m.record_fixed("s")
        before = m.snapshot()
        m.record_fixed("s")
        m.record_wireless_tx("mh-0", "s")
        delta = m.since(before)
        assert delta.total(Category.FIXED) == 1
        assert delta.total(Category.WIRELESS) == 1
        assert delta.energy("mh-0") == 1

    def test_reset_clears_everything(self):
        m = MetricsCollector()
        m.record_fixed()
        m.record_wireless_rx("mh-0")
        m.reset()
        assert m.total(Category.FIXED) == 0
        assert m.energy() == 0

    def test_report_structure(self):
        m = MetricsCollector()
        m.record_fixed("alg")
        report = m.report(CostModel())
        assert report["totals"]["fixed"] == 1
        assert report["by_scope"]["alg"]["fixed"] == 1
        assert "cost_total" in report

    def test_scopes_listed_in_snapshot(self):
        m = MetricsCollector()
        m.record_fixed("a")
        m.record_search("b")
        assert m.snapshot().scopes() == {"a", "b"}

    @given(
        st.lists(
            st.sampled_from(["fixed", "search", "probe"]), max_size=60
        )
    )
    def test_property_cost_is_linear_in_counts(self, ops):
        m = MetricsCollector()
        c = CostModel(c_fixed=2, c_wireless=7, c_search=11)
        for op in ops:
            if op == "fixed":
                m.record_fixed()
            elif op == "search":
                m.record_search()
            else:
                m.record_search_probe()
        expected = (
            ops.count("fixed") * 2
            + ops.count("search") * 11
            + ops.count("probe") * 2
        )
        assert m.cost(c) == expected
