"""Unit tests for the token ring substrate."""

from __future__ import annotations

from collections import deque

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.mutex.ring_core import RingNode, Token


class RingNet:
    """Synchronous FIFO bus for ring nodes."""

    def __init__(self):
        self.nodes = {}
        self.queue = deque()

    def send(self, dst, kind, token):
        self.queue.append((dst, token))

    def pump(self, max_steps=10_000):
        steps = 0
        while self.queue and steps < max_steps:
            dst, token = self.queue.popleft()
            self.nodes[dst].handle_token(token)
            steps += 1


def build(n, on_token=None):
    net = RingNet()
    ids = [f"r{i}" for i in range(n)]
    visits = []

    def default_on_token(node_id):
        def handler(token, forward):
            visits.append(node_id)
            forward()
        return handler

    for node_id in ids:
        net.nodes[node_id] = RingNode(
            node_id=node_id,
            ring_order=ids,
            send=net.send,
            kind_prefix="ring",
            on_token=(on_token or default_on_token)(node_id),
        )
    return net, ids, visits


def test_token_visits_members_in_ring_order():
    net, ids, visits = build(4)
    stop = [False]

    # Replace head behaviour: stop after one traversal.
    original = net.nodes["r0"].on_token

    def head_handler(token, forward):
        if token.traversals >= 1:
            stop[0] = True
            return
        original(token, forward)

    net.nodes["r0"].on_token = head_handler
    net.nodes["r0"].inject_token(Token())
    net.pump()
    assert visits == ["r0", "r1", "r2", "r3"]
    assert stop[0]


def test_traversal_counter_increments_at_head():
    net, ids, visits = build(3)
    counts = []

    def head_handler(token, forward):
        counts.append(token.traversals)
        if token.traversals >= 3:
            return
        forward()

    net.nodes["r0"].on_token = head_handler
    net.nodes["r0"].inject_token(Token())
    net.pump()
    assert counts == [0, 1, 2, 3]


def test_token_val_advances_with_traversals():
    net, ids, visits = build(2)
    vals = []

    def head_handler(token, forward):
        vals.append(token.token_val)
        if token.traversals >= 2:
            return
        forward()

    net.nodes["r0"].on_token = head_handler
    net.nodes["r0"].inject_token(Token(token_val=1))
    net.pump()
    assert vals == [1, 2, 3]


def test_hops_counted():
    net, ids, visits = build(3)
    tokens = []

    def head_handler(token, forward):
        tokens.append(token)
        if token.traversals >= 1:
            return
        forward()

    net.nodes["r0"].on_token = head_handler
    net.nodes["r0"].inject_token(Token())
    net.pump()
    assert tokens[-1].hops == 3


def test_successor_wraps_around():
    net, ids, visits = build(3)
    assert net.nodes["r2"].successor() == "r0"
    assert net.nodes["r0"].successor() == "r1"


def test_double_forward_rejected():
    net, ids, visits = build(2)
    captured = {}

    def capture(node_id):
        def handler(token, forward):
            captured["forward"] = forward
            forward()
        return handler

    net2, ids2, _ = build(2, on_token=capture)
    net2.nodes["r0"].inject_token(Token())
    with pytest.raises(ProtocolError):
        captured["forward"]()


def test_token_arrival_while_held_rejected():
    net, ids, visits = build(2, on_token=lambda nid: (
        lambda token, forward: None  # hold forever
    ))
    net.nodes["r0"].inject_token(Token())
    with pytest.raises(ProtocolError):
        net.nodes["r0"].handle_token(Token())


def test_nonmember_rejected():
    with pytest.raises(ConfigurationError):
        RingNode("x", ["a", "b"], lambda *a: None, "ring",
                 lambda t, f: f())


def test_duplicate_members_rejected():
    with pytest.raises(ConfigurationError):
        RingNode("a", ["a", "a"], lambda *a: None, "ring",
                 lambda t, f: f())


def test_has_token_reflects_holding():
    holder = {}

    def keep(nid):
        def handler(token, forward):
            holder["forward"] = forward
        return handler

    net, ids, _ = build(2, on_token=keep)
    net.nodes["r0"].inject_token(Token())
    assert net.nodes["r0"].has_token
    holder["forward"]()
    assert not net.nodes["r0"].has_token
