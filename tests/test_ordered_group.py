"""Tests for totally ordered group messaging over the location view."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Category, NetworkConfig, Simulation, UniformLatency
from repro.errors import ConfigurationError
from repro.groups import OrderedGroup
from repro.mobility import UniformMobility
from repro.sim import PoissonProcess

from conftest import make_sim


def build(g=4, n_mss=6, **kwargs):
    sim = make_sim(n_mss=n_mss, n_mh=g, **kwargs)
    group = OrderedGroup(sim.network, sim.mh_ids)
    return sim, group


class TestOrdering:
    def test_single_message_reaches_everyone(self):
        sim, group = build()
        group.send("mh-0", "hello")
        sim.drain()
        for member in sim.mh_ids:
            assert group.delivered_seqs(member) == [1]

    def test_concurrent_sends_totally_ordered(self):
        sim, group = build()
        for i in range(6):
            group.send(sim.mh_id(i % 4), f"m{i}")
        sim.drain()
        orders = {
            member: group.delivered_seqs(member)
            for member in sim.mh_ids
        }
        for member, seqs in orders.items():
            assert seqs == [1, 2, 3, 4, 5, 6], member

    def test_non_member_rejected(self):
        sim = make_sim(n_mss=4, n_mh=5)
        group = OrderedGroup(sim.network, sim.mh_ids[:4])
        with pytest.raises(ConfigurationError):
            group.send("mh-4", "x")


class TestFanoutCost:
    def test_static_traffic_proportional_to_view(self):
        # 6 members packed into 2 cells; coordinator = mss-0 (in view).
        sim = make_sim(n_mss=8, n_mh=6,
                       placement=[0, 1, 0, 1, 0, 1])
        group = OrderedGroup(sim.network, sim.mh_ids)
        before = sim.metrics.snapshot()
        group.send("mh-0", "x")
        sim.drain()
        delta = sim.metrics.since(before)
        # Uplink lands at the coordinator itself; fan-out = |LV|-1 = 1
        # fixed message; all 6 members get a wireless copy... sender
        # included? Delivery skips nobody at the wireless layer except
        # nothing -- the sender also receives (total order includes
        # your own messages).
        assert delta.total(Category.FIXED, group.scope) == 1
        assert delta.total(Category.WIRELESS, group.scope) == 1 + 6

    def test_sender_also_delivered_in_order(self):
        sim, group = build()
        group.send("mh-2", "mine")
        sim.drain()
        assert group.delivered_seqs("mh-2") == [1]


class TestRepair:
    def test_mover_catches_up_via_sync(self):
        sim, group = build(g=3, n_mss=6)
        group.send("mh-0", "one")
        sim.drain()
        # mh-1 is mid-move while two messages go out.
        sim.mh(1).move_to("mss-5")
        group.send("mh-0", "two")
        group.send("mh-0", "three")
        sim.drain()
        assert group.delivered_seqs("mh-1") == [1, 2, 3]

    def test_gap_detected_from_later_message(self):
        sim, group = build(g=3, n_mss=6, transit_time=6.0)
        group.send("mh-0", "one")
        sim.drain()
        sim.mh(1).move_to("mss-4")
        group.send("mh-0", "two")     # missed: mh-1 in transit
        sim.drain()
        group.send("mh-0", "three")   # arrives; exposes the gap
        sim.drain()
        assert group.delivered_seqs("mh-1") == [1, 2, 3]

    def test_duplicates_from_repair_races_are_dropped(self):
        sim, group = build()
        for i in range(4):
            group.send("mh-0", f"m{i}")
        sim.drain()
        for member in sim.mh_ids:
            seqs = group.delivered_seqs(member)
            assert seqs == sorted(set(seqs))


STRESS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@STRESS
@given(
    seed=st.integers(0, 10_000),
    g=st.integers(2, 6),
    move_rate=st.floats(0.0, 0.06),
)
def test_property_total_order_exactly_once_under_mobility(
    seed, g, move_rate
):
    sim = Simulation(
        n_mss=6, n_mh=g, seed=seed,
        config=NetworkConfig(
            fixed_latency=UniformLatency(0.2, 2.0),
            wireless_latency=UniformLatency(0.1, 0.6),
        ),
        placement="random",
    )
    group = OrderedGroup(sim.network, sim.mh_ids)
    rng = random.Random(seed + 1)
    sent = [0]

    def send_one():
        sender = rng.choice(sim.mh_ids)
        if sim.network.mobile_host(sender).is_connected:
            sent[0] += 1
            group.send(sender, ("m", sent[0]))

    traffic = PoissonProcess(sim.scheduler, 0.05, send_one,
                             rng=random.Random(seed + 2))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 3))
    sim.run(until=250.0)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    total = group.messages_sent
    for member in sim.mh_ids:
        assert group.delivered_seqs(member) == \
            list(range(1, total + 1)), member
