"""Tests for the Simulation facade."""

from __future__ import annotations

import pytest

from repro import CostModel, Simulation
from repro.errors import ConfigurationError
from repro.net.search import BroadcastSearch, HomeAgentSearch


def test_builds_named_hosts():
    sim = Simulation(n_mss=3, n_mh=5)
    assert sim.mss_ids == ["mss-0", "mss-1", "mss-2"]
    assert sim.mh_ids == ["mh-0", "mh-1", "mh-2", "mh-3", "mh-4"]
    assert sim.mss_id(1) == "mss-1"
    assert sim.mh_id(4) == "mh-4"


def test_round_robin_placement():
    sim = Simulation(n_mss=3, n_mh=5, placement="round_robin")
    assert sim.mh(0).current_mss_id == "mss-0"
    assert sim.mh(3).current_mss_id == "mss-0"
    assert sim.mh(4).current_mss_id == "mss-1"


def test_single_cell_placement():
    sim = Simulation(n_mss=3, n_mh=4, placement="single_cell")
    for i in range(4):
        assert sim.mh(i).current_mss_id == "mss-0"


def test_explicit_placement_list():
    sim = Simulation(n_mss=4, n_mh=3, placement=[2, 0, 3])
    assert [sim.mh(i).current_mss_id for i in range(3)] == [
        "mss-2", "mss-0", "mss-3"
    ]


def test_callable_placement():
    sim = Simulation(n_mss=4, n_mh=4, placement=lambda i, m: m - 1 - i)
    assert sim.mh(0).current_mss_id == "mss-3"


def test_random_placement_is_seeded():
    cells_a = [
        Simulation(n_mss=5, n_mh=10, seed=3, placement="random")
        .mh(i).current_mss_id
        for i in range(10)
    ]
    cells_b = [
        Simulation(n_mss=5, n_mh=10, seed=3, placement="random")
        .mh(i).current_mss_id
        for i in range(10)
    ]
    assert cells_a == cells_b


def test_placement_length_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=2, n_mh=3, placement=[0, 1])


def test_unknown_placement_rejected():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=2, n_mh=2, placement="diagonal")


def test_search_selection_by_name():
    sim = Simulation(n_mss=2, n_mh=1, search="broadcast")
    assert isinstance(sim.network.search_protocol, BroadcastSearch)
    sim = Simulation(n_mss=2, n_mh=1, search="home-agent")
    assert isinstance(sim.network.search_protocol, HomeAgentSearch)


def test_search_instance_passthrough():
    protocol = BroadcastSearch()
    sim = Simulation(n_mss=2, n_mh=1, search=protocol)
    assert sim.network.search_protocol is protocol


def test_unknown_search_rejected():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=2, n_mh=1, search="psychic")


def test_needs_at_least_one_mss():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=0, n_mh=1)


def test_cost_helper_uses_cost_model():
    model = CostModel(c_fixed=2.0, c_wireless=3.0, c_search=4.0)
    sim = Simulation(n_mss=2, n_mh=2, cost_model=model)
    sim.mh(0).move_to("mss-1")
    sim.drain()
    # leave + join (2 wireless) plus the handoff request/reply between
    # the new and previous MSSs (2 fixed), all under the mobility scope.
    assert sim.cost("mobility") == 2 * 3.0 + 2 * 2.0


def test_now_tracks_scheduler():
    sim = Simulation(n_mss=2, n_mh=0)
    sim.run(until=12.5)
    assert sim.now == 12.5


def test_same_seed_same_run():
    def run(seed):
        import random
        from repro.mobility import UniformMobility
        sim = Simulation(n_mss=4, n_mh=6, seed=seed)
        model = UniformMobility(sim.network, sim.mh_ids, 0.2,
                                rng=random.Random(seed))
        sim.run(until=100.0)
        model.stop()
        sim.drain()
        return (
            [sim.mh(i).current_mss_id for i in range(6)],
            sim.metrics.report(),
        )

    assert run(11) == run(11)
