"""The store's correctness claim: byte-identity at small N.

With the abstract search protocol, a run with ``population_store=True``
must be indistinguishable from the plain object path -- same event
count, same final clock, same full-surface metrics digest -- because
promotion is silent (no events, no messages, no RNG draws).  The
golden numbers are pinned from the object path so the pair of modes
cannot drift together unnoticed.

The claim is deliberately scoped to the abstract search protocol:
location-maintaining searches (home-agent, caching) learn a host's
cell at *promotion* time rather than t=0, so their maintenance traffic
shifts -- see docs/scaling.md.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import Simulation
from repro.mutex import CriticalResource, L2Mutex


def metrics_digest(sim) -> str:
    snap = sim.metrics.snapshot()
    counts = sorted(
        ((cat.value, scope), n) for (cat, scope), n in snap.counts.items()
    )
    payload = json.dumps(
        {
            "counts": counts,
            "energy_tx": sorted(snap.energy_tx.items()),
            "energy_rx": sorted(snap.energy_rx.items()),
            "faults": sorted(snap.faults.items()),
            "recovery_times": list(snap.recovery_times),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: golden numbers recorded on the object path (population_store=False).
GOLDEN = {
    "events_processed": 96,
    "final_now": 44.5,
    "access_count": 5,
    "digest": "873520cf78de92facd5c5abb8147f33d"
              "94c0fda184ee3d98340b8a9047b25f2e",
}


def workload(population_store: bool):
    """Mutex + mobility + messaging over a 5-host active set out of 30.

    Everything the workload touches goes through the public surface
    (ids and accessors), so the store path exercises promotion for the
    active five while 25 hosts stay passive arrays.
    """
    sim = Simulation(n_mss=5, n_mh=30, seed=21,
                     population_store=population_store)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=1.0, scope="L2")
    for i in range(5):
        mutex.request(sim.mh_id(i))
    sim.run(until=10.0)
    sim.mh(1).move_to(sim.mss_id(3))
    sim.mh(2).disconnect()
    sim.run(until=20.0)
    sim.mh(2).reconnect(sim.mss_id(0), supply_prev=True)
    got = []
    sim.mh(3).register_handler("app.ping", lambda m: got.append(m))
    sim.network.send_to_mh(
        sim.mss_id(4), sim.mh_id(3),
        __import__("repro.net.messages", fromlist=["Message"]).Message(
            src=sim.mss_id(4), dst=sim.mh_id(3), kind="app.ping",
            scope="app", payload=None,
        ),
    )
    sim.run(until=40.0)
    sim.mh(0).move_to(sim.mss_id(2))
    sim.drain(max_events=1_000_000)
    assert got, "app message never delivered"
    return sim, resource, sim.scheduler.events_processed


@pytest.mark.parametrize("store", [False, True], ids=["objects", "store"])
def test_workload_matches_golden(store):
    sim, resource, events = workload(store)
    assert events == GOLDEN["events_processed"]
    assert sim.now == GOLDEN["final_now"]
    assert resource.access_count == GOLDEN["access_count"]
    assert metrics_digest(sim) == GOLDEN["digest"]


def test_store_run_is_byte_identical_to_object_run():
    plain, _, plain_events = workload(False)
    stored, _, stored_events = workload(True)
    assert stored_events == plain_events
    assert stored.now == plain.now
    assert metrics_digest(stored) == metrics_digest(plain)
    # And the store really was in play: only the touched hosts were
    # ever promoted.
    assert 0 < stored.population.active_count <= 6
    assert stored.population.passive_connected >= 24


def test_untouched_crowd_never_promotes():
    sim = Simulation(n_mss=4, n_mh=50, seed=9, population_store=True)
    sim.mh(0).move_to(sim.mss_id(2))
    sim.drain()
    assert sim.population.promotions == 1
