"""Monitor hub mechanics, facade wiring, health telemetry and the
``repro monitor`` CLI.

The mutation suite (``test_monitor_mutations.py``) proves each monitor
catches its bug; this file proves the plumbing around them: interest
dispatch, the record/drop modes, online-vs-replay equivalence, the
``Simulation(monitors=...)`` surface, the health exports, and the CLI
watchdog over the canonical walkthrough scenarios.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    HealthMonitor,
    InvariantViolationError,
    LivenessMonitor,
    Monitor,
    MonitorHub,
    Simulation,
    default_monitors,
    replay_events,
    safety_monitors,
)
from repro.cli import main
from repro.mutex import CriticalResource, L2Mutex
from repro.trace.scenarios import SCENARIOS, run_scenario


class Recorder(Monitor):
    name = "recorder"
    interests = ("cs.enter",)

    def __init__(self):
        super().__init__()
        self.seen = []

    def on_event(self, event):
        self.seen.append(event.etype)


class Wildcard(Recorder):
    name = "wildcard"
    interests = None


def l2_run(**sim_kwargs):
    sim = Simulation(n_mss=3, n_mh=3, seed=7, **sim_kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=1.0, scope="L2")
    for mh_id in sim.mh_ids:
        mutex.request(mh_id)
    sim.drain()
    return sim


# ---------------------------------------------------------------------
# dispatch mechanics
# ---------------------------------------------------------------------

def test_interest_dispatch_routes_only_matching_events():
    narrow, wide = Recorder(), Wildcard()
    sim = l2_run(monitors=[narrow, wide])
    assert narrow.seen == ["cs.enter"] * 3
    assert set(narrow.seen) < set(wide.seen)
    assert wide.seen.count("cs.enter") == 3


def test_record_false_drops_events_record_true_keeps_them():
    dropped = l2_run(monitors=[Recorder()])
    kept = l2_run(trace=True, monitors=[Recorder()])
    assert dropped.monitor_hub.events == []
    assert dropped.monitor_hub.record is False
    assert kept.monitor_hub.record is True
    assert len(kept.monitor_hub.events) > 0
    assert kept.tracer is kept.monitor_hub


def test_replay_sees_exactly_what_online_saw():
    online = Wildcard()
    sim = l2_run(trace=True, monitors=[online])
    offline = Wildcard()
    replay_events(sim.tracer.events, [offline])
    assert offline.seen == online.seen


def test_hub_finalize_is_idempotent():
    liveness = LivenessMonitor()
    hub = MonitorHub(None, [liveness], record=False)
    hub.dispatch_count = 0
    liveness.pending[("L2", "mh-0")] = 1.0
    hub.finalize(at=500.0)
    hub.finalize(at=900.0)
    assert len(liveness.violations) == 1


def test_monitor_lookup_by_class():
    monitors = default_monitors()
    hub = MonitorHub(None, monitors, record=False)
    assert isinstance(hub.monitor(HealthMonitor), HealthMonitor)
    assert hub.monitor(Recorder) is None


def test_default_monitors_bundle_safety_liveness_and_health():
    monitors = default_monitors(request_deadline=9.0, token_deadline=4.0,
                                health_interval=2.0)
    names = [type(m).__name__ for m in monitors]
    assert len(monitors) == len(safety_monitors()) + 2
    assert "LivenessMonitor" in names and "HealthMonitor" in names
    liveness = next(m for m in monitors if isinstance(m, LivenessMonitor))
    assert liveness.request_deadline == 9.0
    assert liveness.token_deadline == 4.0


# ---------------------------------------------------------------------
# facade surface
# ---------------------------------------------------------------------

def test_facade_without_monitors_installs_no_hub():
    sim = l2_run()
    assert sim.monitor_hub is None
    assert "not installed" in sim.monitor_report()
    sim.assert_invariants()  # no-op, must not raise


def test_facade_monitors_true_installs_the_default_set():
    sim = l2_run(monitors=True)
    assert sim.monitor_hub is not None
    assert len(sim.monitor_hub.monitors) == len(default_monitors())
    assert sim.monitor_hub.network is sim.network
    sim.assert_invariants()
    assert "invariant monitors" in sim.monitor_report()
    assert "ok" in sim.monitor_report()


def test_assert_invariants_raises_on_violation():
    monitor = LivenessMonitor(request_deadline=1e9)
    sim = l2_run(monitors=[monitor])
    monitor.pending[("L2", "mh-9")] = 0.0  # synthetic unserved request
    with pytest.raises(InvariantViolationError) as excinfo:
        sim.assert_invariants()
    assert "liveness.request_unserved" in str(excinfo.value)


# ---------------------------------------------------------------------
# health telemetry
# ---------------------------------------------------------------------

def test_health_samples_and_exports():
    sim = l2_run(monitors=True)
    sim.monitor_hub.finalize()
    health = sim.monitor_hub.monitor(HealthMonitor)
    assert health.samples, "no gauge samples were taken"
    last = health.samples[-1]
    assert last["sends"] > 0 and last["recvs"] > 0
    assert last["cs_entries"] == 3
    assert last["violations"] == 0
    assert sum(last["mss_load"].values()) == 3
    lines = health.to_jsonl().strip().splitlines()
    assert len(lines) == len(health.samples)
    parsed = [json.loads(line) for line in lines]
    assert [p["t"] for p in parsed] == sorted(p["t"] for p in parsed)
    prom = health.to_prometheus()
    assert "# TYPE repro_sends_total gauge" in prom
    assert "repro_cs_entries_total 3" in prom
    assert 'repro_mss_load{mss="mss-0"}' in prom
    assert "repro_invariant_violations 0" in prom


def test_health_sampling_interval_is_edge_triggered():
    health = HealthMonitor(interval=100.0)
    sim = l2_run(monitors=[health])
    # a short run crosses the t=0 boundary once and never reaches 100
    assert len(health.samples) == 1
    sim.monitor_hub.finalize()
    assert len(health.samples) == 2  # finalize appends the closing one


# ---------------------------------------------------------------------
# canonical scenarios and the CLI watchdog
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_canonical_scenarios_hold_every_invariant(name):
    run = run_scenario(name)
    hub = replay_events(run.events, default_monitors(),
                        network=run.sim.network)
    assert hub.ok, hub.report()


def test_cli_monitor_lists_scenarios():
    lines = []
    assert main(["monitor", "--list"], emit=lines.append) == 0
    out = "\n".join(lines)
    for name in SCENARIOS:
        assert name in out


def test_cli_monitor_certifies_one_scenario(tmp_path):
    health = tmp_path / "health.jsonl"
    prom = tmp_path / "health.prom"
    lines = []
    code = main(
        ["monitor", "--scenario", "l2",
         "--health-out", str(health), "--prom-out", str(prom)],
        emit=lines.append,
    )
    out = "\n".join(lines)
    assert code == 0
    assert "all invariants held" in out
    samples = [json.loads(line) for line in
               health.read_text().strip().splitlines()]
    assert samples and samples[-1]["cs_entries"] > 0
    assert "repro_sim_time" in prom.read_text()


def test_cli_monitor_runs_all_scenarios():
    lines = []
    assert main(["monitor"], emit=lines.append) == 0
    out = "\n".join(lines)
    assert "all invariants held" in out
    for name in SCENARIOS:
        assert name in out


def test_cli_monitor_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["monitor", "--scenario", "nope"], emit=lambda _line: None)
