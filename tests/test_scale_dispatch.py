"""Coalesced cohort dispatch: batching semantics and the runner's use.

The scale substrate's promise (ROADMAP item 2) is that a mass event
over a cohort of K MHs costs O(min(K, max_batches)) scheduler events,
not O(K) -- while cohorts small enough to schedule exactly are
scheduled exactly, so the certified chaos pack is bit-for-bit
unchanged.
"""

from __future__ import annotations

import pytest

from repro.scale import DEFAULT_MAX_BATCHES, dispatch_coalesced
from repro.scenario.loader import load_spec
from repro.scenario.runner import run_scenario
from repro.sim import Scheduler


def test_small_cohorts_schedule_exactly():
    sched = Scheduler()
    fired = []
    ops = [
        (float(i), fired.append, (i,))
        for i in range(DEFAULT_MAX_BATCHES)
    ]
    created = dispatch_coalesced(sched, ops)
    assert created == DEFAULT_MAX_BATCHES
    assert sched.pending_count == DEFAULT_MAX_BATCHES
    # Each op fires at its own exact delay, in delay order.
    times = []
    while sched.step():
        times.append(sched.now)
    assert fired == list(range(DEFAULT_MAX_BATCHES))
    assert times == [float(i) for i in range(DEFAULT_MAX_BATCHES)]


def test_large_cohorts_are_bounded_by_max_batches():
    sched = Scheduler()
    fired = []
    ops = [(i * 0.1, fired.append, (i,)) for i in range(500)]
    created = dispatch_coalesced(sched, ops)
    assert created <= DEFAULT_MAX_BATCHES
    assert sched.pending_count == created
    sched.drain()
    # Every callback still runs exactly once.
    assert sorted(fired) == list(range(500))


def test_batching_never_fires_early():
    """Quantization rounds delays *up* onto the batch grid: an op asked
    to run at t may run later than t, never before."""
    sched = Scheduler()
    seen = {}

    def note(i, want):
        seen[i] = (want, sched.now)

    ops = [(i * 0.37, note, (i, i * 0.37)) for i in range(200)]
    dispatch_coalesced(sched, ops)
    sched.drain()
    assert len(seen) == 200
    for want, got in seen.values():
        assert got >= want - 1e-9


def test_zero_spread_collapses_to_one_batch():
    sched = Scheduler()
    fired = []
    ops = [(0.0, fired.append, (i,)) for i in range(100)]
    created = dispatch_coalesced(sched, ops)
    assert created == 1
    sched.drain()
    assert fired == list(range(100))


def test_empty_and_invalid():
    sched = Scheduler()
    assert dispatch_coalesced(sched, []) == 0
    with pytest.raises(ValueError):
        dispatch_coalesced(sched, [(0.0, print, ())], max_batches=0)


def test_runner_mass_event_creates_bounded_followups(monkeypatch):
    """A mass_disconnect over a cohort far larger than the batch budget
    must not create one reconnect timer per MH."""
    import repro.scenario.runner as runner_mod

    calls = []

    def spy(scheduler, ops, max_batches=DEFAULT_MAX_BATCHES):
        created = dispatch_coalesced(scheduler, ops, max_batches)
        calls.append((len(ops), created))
        return created

    monkeypatch.setattr(runner_mod, "dispatch_coalesced", spy)
    n_mh = 300
    spec = load_spec({
        "name": "dispatch-probe",
        "n_mss": 4,
        "n_mh": n_mh,
        "duration": 30.0,
        "settle": 200.0,
        "workload": {"kind": "none"},
        "events": [{
            "kind": "mass_disconnect",
            "at": 5.0,
            "fraction": 1.0,
            "downtime": 10.0,
            "reconnect_spread": 8.0,
        }],
        "expect": {},
    })
    result = run_scenario(spec, seed=3)
    assert result.ok, result.failures
    big = [(n_ops, created) for n_ops, created in calls if n_ops >= 100]
    assert big, f"no large cohort dispatched: {calls}"
    for n_ops, created in big:
        assert n_ops == n_mh
        assert created <= DEFAULT_MAX_BATCHES
