"""Tests for the ASCII rendering helpers."""

from __future__ import annotations

import pytest

from repro import CostModel
from repro.errors import ConfigurationError
from repro.metrics.render import bar_chart, cost_sparklines, sparkline
from repro.metrics.timeline import TimelineCollector
from repro.sim import Scheduler


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        result = sparkline([5.0, 5.0, 5.0])
        assert len(result) == 3
        assert len(set(result)) == 1

    def test_monotone_series_monotone_glyphs(self):
        levels = " .:-=+*#%@"
        result = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        indices = [levels.index(ch) for ch in result]
        assert indices == sorted(indices)
        assert indices[0] < indices[-1]

    def test_width_resampling(self):
        result = sparkline(list(range(100)), width=10)
        assert len(result) == 10

    def test_extremes_hit_ends_of_scale(self):
        result = sparkline([0.0, 10.0])
        levels = " .:-=+*#%@"
        assert result[0] == levels[1]
        assert result[1] == levels[-1]


class TestBarChart:
    def test_renders_all_labels_and_values(self):
        chart = bar_chart({"alpha": 10.0, "beta": 5.0})
        assert "alpha" in chart and "beta" in chart
        assert "10" in chart and "5" in chart

    def test_sorted_by_value(self):
        chart = bar_chart({"small": 1.0, "big": 100.0})
        lines = chart.splitlines()
        assert lines[0].startswith("big")

    def test_longest_bar_belongs_to_peak(self):
        chart = bar_chart({"a": 100.0, "b": 50.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            bar_chart({"a": 1.0}, width=0)


class TestCostSparklines:
    def test_renders_one_row_per_scope(self):
        sched = Scheduler()
        collector = TimelineCollector(sched)
        sched.schedule(1.0, collector.record_fixed, "a")
        sched.schedule(25.0, collector.record_search, "a")
        sched.drain()
        out = cost_sparklines(
            collector, CostModel(), bucket=10.0, scopes=["a", "b"],
        )
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "no traffic" in lines[1]

    def test_totals_shown(self):
        sched = Scheduler()
        collector = TimelineCollector(sched)
        sched.schedule(1.0, collector.record_fixed, "x")
        sched.schedule(2.0, collector.record_fixed, "x")
        sched.drain()
        out = cost_sparklines(
            collector, CostModel(c_fixed=3.0), bucket=10.0, scopes=["x"],
        )
        assert "6" in out
