"""Tests for the structured trace layer (``repro.trace``).

The two properties that matter most:

* tracing off (the default) is *exactly* the seed behaviour -- zero
  extra messages, identical cost totals, identical randomness;
* tracing on is a pure observer -- the same totals again, plus a
  causally-linked event stream whose content matches what the
  protocols actually did (locked in hop-by-hop for R2'').
"""

from __future__ import annotations

import json

import pytest

from repro import (
    CriticalResource,
    FaultPlan,
    L2Mutex,
    MssCrash,
    R2Mutex,
    R2Variant,
    Simulation,
    to_chrome,
    to_jsonl,
    to_mermaid,
)
from repro.trace import NULL_TRACER, Tracer
from repro.trace.scenarios import SCENARIOS, run_scenario


def run_l2_once(trace: bool):
    sim = Simulation(n_mss=3, n_mh=3, seed=7, trace=trace)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    mutex.request("mh-0")
    sim.mh(0).move_to("mss-2")
    sim.drain()
    return sim


def run_r2_crash(trace: bool):
    plan = FaultPlan(
        crashes=(MssCrash("mss-1", at=0.5, recover_at=40.0),), seed=3
    )
    sim = Simulation(n_mss=3, n_mh=3, seed=3, trace=trace,
                     fault_plan=plan)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, variant=R2Variant.TOKEN_LIST,
                    max_traversals=6, token_timeout=15.0)
    mutex.request("mh-0")
    mutex.request("mh-1")
    mutex.start()
    sim.drain()
    return sim


class TestNoOpGuarantee:
    def test_network_trace_defaults_to_null(self):
        sim = Simulation(n_mss=2, n_mh=1, seed=0)
        assert sim.network.trace is NULL_TRACER
        assert sim.tracer is None
        assert not sim.network.trace.enabled

    def test_null_tracer_emit_and_context_are_inert(self):
        assert NULL_TRACER.emit("anything", src="x") is None
        with NULL_TRACER.context(5):
            assert NULL_TRACER.emit("inner") is None

    @pytest.mark.parametrize("runner", [run_l2_once, run_r2_crash])
    def test_identical_totals_with_and_without_tracing(self, runner):
        plain = runner(trace=False)
        traced = runner(trace=True)
        a = plain.metrics.snapshot()
        b = traced.metrics.snapshot()
        assert a.counts == b.counts
        assert a.energy_tx == b.energy_tx
        assert a.energy_rx == b.energy_rx
        assert a.faults == b.faults
        assert plain.cost() == traced.cost()
        assert plain.now == traced.now
        assert traced.tracer.events  # and it actually recorded

    def test_scenarios_never_touch_the_scheduler(self):
        # Same scenario twice must give byte-identical traces: any
        # hidden RNG or scheduler interaction would break this.
        for name in SCENARIOS:
            assert to_jsonl(run_scenario(name).events) == to_jsonl(
                run_scenario(name).events
            ), name


class TestCausality:
    def test_ids_are_monotonic_and_parents_precede(self):
        sim = run_l2_once(trace=True)
        events = sim.tracer.events
        ids = [e.id for e in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        by_id = {e.id: e for e in events}
        for event in events:
            if event.parent_id is not None:
                assert event.parent_id in by_id
                assert by_id[event.parent_id].time <= event.time

    def test_recv_parents_to_its_send(self):
        sim = run_l2_once(trace=True)
        by_id = {e.id: e for e in sim.tracer.events}
        recvs = [e for e in sim.tracer.events if e.etype == "recv"]
        assert recvs
        for recv in recvs:
            parent = by_id[recv.parent_id]
            assert parent.etype.startswith(("send.", "rel.send"))
            assert parent.kind == recv.kind

    def test_handler_events_parent_to_the_recv(self):
        sim = run_l2_once(trace=True)
        events = sim.tracer.events
        by_id = {e.id: e for e in events}
        enters = [e for e in events if e.etype == "cs.enter"]
        assert enters
        # The CS entry is caused by receiving the grant.
        parent = by_id[enters[0].parent_id]
        assert parent.etype == "recv"
        assert parent.kind.endswith(".grant")

    def test_tracer_context_stack(self):
        tracer = Tracer(Simulation(n_mss=1, n_mh=0).scheduler)
        outer = tracer.emit("outer")
        with tracer.context(outer):
            inner = tracer.emit("inner")
        after = tracer.emit("after")
        by_id = {e.id: e for e in tracer.events}
        assert by_id[inner].parent_id == outer
        assert by_id[after].parent_id is None


class TestR2TokenListTrace:
    """Acceptance: the R2'' walkthrough trace shows every token hop
    with matching token_list mutations."""

    def test_every_hop_recorded_with_consistent_mutations(self):
        run = run_scenario("r2_token_list")
        events = run.events
        arrivals = [e for e in events if e.etype == "token.arrive"]
        appends = [e for e in events if e.etype == "token.append"]
        assert len(arrivals) >= 6  # two traversals over three MSSs
        # Hop-by-hop: arrival at MSS m prunes exactly the (m, _) pairs.
        for arrival in arrivals:
            before = arrival.detail["token_list_before"]
            after = arrival.detail["token_list"]
            assert after == [p for p in before if p[0] != arrival.src]
        # Each completed access appends its (mss, mh) pair, and the
        # appended state is what the next hop departs with.
        assert sorted(tuple(a.detail["pair"]) for a in appends) == [
            ("mss-0", "mh-0"), ("mss-1", "mh-1"),
        ]
        state = []
        for event in events:
            if event.etype == "token.arrive":
                assert event.detail["token_list_before"] == state
                state = event.detail["token_list"]
            elif event.etype == "token.append":
                state = event.detail["token_list"]

    def test_token_values_increment_per_traversal(self):
        run = run_scenario("r2_token_list")
        arrivals = [e for e in run.events if e.etype == "token.arrive"]
        ring = [a.src for a in arrivals]
        assert ring[0] == "mss-0"
        vals = [a.detail["token_val"] for a in arrivals]
        assert vals == sorted(vals)

    def test_crash_recovery_trace_shows_epoch_bump(self):
        run = run_scenario("r2_crash_recovery")
        etypes = [e.etype for e in run.events]
        for expected in ("fault.mss_crash", "mh.orphaned",
                         "fault.mh_rejoin", "mh.reconnect",
                         "r2.resubmit", "r2.regenerate"):
            assert expected in etypes, expected
        epochs = [e.detail["epoch"] for e in run.events
                  if e.etype == "token.arrive"]
        assert 0 in epochs and 1 in epochs
        assert epochs == sorted(epochs)


class TestExporters:
    def test_jsonl_is_parseable_and_complete(self):
        run = run_scenario("l2")
        lines = to_jsonl(run.events).splitlines()
        assert len(lines) == len(run.events)
        records = [json.loads(line) for line in lines]
        assert [r["id"] for r in records] == [e.id for e in run.events]
        assert all("t" in r and "type" in r and "scope" in r
                   for r in records)

    def test_chrome_export_has_tracks_and_flows(self):
        run = run_scenario("l2")
        doc = json.loads(to_chrome(run.events))
        records = doc["traceEvents"]
        names = {r["args"]["name"] for r in records
                 if r.get("ph") == "M"}
        assert {"mh-0", "mss-0", "mss-1", "mss-2"} <= names
        sends = [r for r in records if r.get("ph") == "s"]
        finishes = [r for r in records if r.get("ph") == "f"]
        assert sends and finishes
        assert {f["id"] for f in finishes} <= {s["id"] for s in sends}

    def test_mermaid_arrows_notes_and_cost_tags(self):
        run = run_scenario("l2")
        diagram = to_mermaid(run.events, title="demo")
        assert diagram.startswith("sequenceDiagram")
        assert "    title demo" in diagram
        assert "mh-0->>mss-0: L2.init [C_wireless]" in diagram
        assert "mss-0->>mss-1: L2.request [C_fixed]" in diagram
        assert "Note over mh-0: enters CS" in diagram

    def test_mermaid_truncation_is_explicit(self):
        run = run_scenario("r2_crash_recovery")
        diagram = to_mermaid(run.events, max_steps=5)
        assert len([l for l in diagram.splitlines()
                    if "->>" in l or "--x" in l or "Note over" in l
                    ]) <= 6  # 5 steps + the truncation note
        assert "further steps truncated" in diagram

    def test_mermaid_marks_lost_messages(self):
        run = run_scenario("reliable_retransmit")
        diagram = to_mermaid(run.events)
        assert "mss-0--xmss-1" in diagram       # the dropped copy
        assert "mss-0->>mss-1" in diagram       # the successful one
