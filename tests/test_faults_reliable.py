"""Tests for the reliable FIFO-exactly-once layer over lossy links."""

from __future__ import annotations

import pytest

from repro import (
    Category,
    FaultPlan,
    LinkFault,
    MssCrash,
    Simulation,
)
from repro.errors import SimulationError
from repro.net import ConstantLatency, NetworkConfig


def fault_sim(plan, n_mss=2, n_mh=0, seed=1):
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    return Simulation(
        n_mss=n_mss, n_mh=n_mh, seed=seed, config=config, fault_plan=plan
    )


def collect(sim, mss_index, kind):
    received = []
    sim.mss(mss_index).register_handler(
        kind, lambda m: received.append((sim.now, m.payload))
    )
    return received


def test_single_message_on_fresh_channel_delivers_exactly_once():
    """Regression: a lone message must not be eaten by its own floor."""
    sim = fault_sim(FaultPlan())
    received = collect(sim, 1, "t.data")
    sim.mss(0).send_fixed("mss-1", "t.data", "only", "t")
    sim.drain()
    assert [p for (_, p) in received] == ["only"]
    rel = sim.network.reliable
    assert rel.retransmits == 0
    assert rel.duplicates_suppressed == 0
    assert rel.gaps_skipped == 0
    assert rel.gave_up == 0


def test_transport_traffic_is_charged_to_the_wrapped_scope():
    sim = fault_sim(FaultPlan())
    collect(sim, 1, "t.data")
    sim.mss(0).send_fixed("mss-1", "t.data", "x", "t")
    sim.drain()
    # One data envelope plus one ack, both priced as fixed messages.
    assert sim.metrics.total(Category.FIXED, "t") == 2


def test_lossy_link_delivers_everything_exactly_once_in_order():
    plan = FaultPlan(
        link_faults=(LinkFault(drop=0.5),),
        seed=5,
        retransmit_timeout=2.0,
    )
    sim = fault_sim(plan)
    received = collect(sim, 1, "t.data")
    for i in range(20):
        sim.mss(0).send_fixed("mss-1", "t.data", i, "t")
    sim.drain()
    assert [p for (_, p) in received] == list(range(20))
    assert sim.network.reliable.retransmits > 0
    assert sim.metrics.fault_total("fixed.dropped") > 0
    assert sim.metrics.fault_total("rel.retransmit") > 0


def test_duplicated_envelopes_are_suppressed():
    plan = FaultPlan(link_faults=(LinkFault(duplicate=1.0),), seed=2)
    sim = fault_sim(plan)
    received = collect(sim, 1, "t.data")
    for i in range(5):
        sim.mss(0).send_fixed("mss-1", "t.data", i, "t")
    sim.drain()
    assert [p for (_, p) in received] == list(range(5))
    assert sim.network.reliable.duplicates_suppressed >= 5
    assert sim.metrics.fault_total("rel.dup_suppressed") >= 5


def test_fifo_restored_when_a_retransmit_arrives_late():
    """A later message must wait for the retransmit of an earlier one."""
    plan = FaultPlan(
        # Only the very first transmission window is lossy: message A's
        # original copy dies, its retransmit sails through.
        link_faults=(LinkFault(drop=1.0, end=0.5),),
        retransmit_timeout=5.0,
    )
    sim = fault_sim(plan)
    received = collect(sim, 1, "t.data")
    sim.mss(0).send_fixed("mss-1", "t.data", "A", "t")
    sim.scheduler.schedule_at(
        1.0, lambda: sim.mss(0).send_fixed("mss-1", "t.data", "B", "t")
    )
    sim.drain()
    # B physically arrived at t=2 but was buffered until A's retransmit
    # (sent at t=5) landed at t=6; both released in order at t=6.
    assert received == [(6.0, "A"), (6.0, "B")]
    assert sim.network.reliable.retransmits == 1


def test_give_up_then_gap_skip_unblocks_the_channel():
    """A message to a long-dead station is abandoned after the retry
    budget; the advertised floor lets the receiver skip the permanent
    gap instead of blocking every later message head-of-line."""
    plan = FaultPlan(
        crashes=(MssCrash("mss-1", at=1.0, recover_at=20.0),),
        retransmit_timeout=1.0,
        retransmit_backoff=1.0,
        max_retransmits=3,
    )
    sim = fault_sim(plan)
    received = collect(sim, 1, "t.data")
    sim.scheduler.schedule_at(
        2.0, lambda: sim.mss(0).send_fixed("mss-1", "t.data", "lost", "t")
    )
    sim.scheduler.schedule_at(
        25.0, lambda: sim.mss(0).send_fixed("mss-1", "t.data", "after", "t")
    )
    sim.drain()
    assert [p for (_, p) in received] == ["after"]
    rel = sim.network.reliable
    assert rel.gave_up == 1
    assert rel.gaps_skipped == 1
    assert sim.metrics.fault_total("rel.give_up") == 1
    assert sim.metrics.fault_total("rel.gap_skipped") == 1


def test_lost_acks_only_cause_reacked_duplicates():
    """Dropping acks triggers retransmissions whose copies the receiver
    suppresses and re-acks -- the application still sees exactly one."""
    plan = FaultPlan(
        link_faults=(LinkFault(drop=1.0, src="mss-1", dst="mss-0",
                               end=3.0),),
        retransmit_timeout=4.0,
    )
    sim = fault_sim(plan)
    received = collect(sim, 1, "t.data")
    sim.mss(0).send_fixed("mss-1", "t.data", "x", "t")
    sim.drain()
    assert [p for (_, p) in received] == ["x"]
    assert sim.network.reliable.retransmits >= 1
    assert sim.network.reliable.duplicates_suppressed >= 1


def test_reliable_layer_installs_once():
    sim = fault_sim(FaultPlan())
    with pytest.raises(SimulationError):
        sim.network.install_reliable()


def test_plan_can_opt_out_of_reliability():
    plan = FaultPlan(link_faults=(LinkFault(drop=1.0),), reliable=False)
    sim = fault_sim(plan)
    assert sim.network.reliable is None
    received = collect(sim, 1, "t.data")
    sim.mss(0).send_fixed("mss-1", "t.data", "x", "t")
    sim.drain()
    assert received == []  # raw loss, exactly what the plan asked for


def test_transport_parameters_come_from_the_plan():
    plan = FaultPlan(
        retransmit_timeout=7.0, retransmit_backoff=2.0, max_retransmits=4
    )
    sim = fault_sim(plan)
    rel = sim.network.reliable
    assert rel.timeout == 7.0
    assert rel.backoff == 2.0
    assert rel.max_retries == 4
