"""Tests for the live telemetry service (repro.obs.service).

Covers the three routes in-process (payload shape, 404 handling,
port-0 binding) and end-to-end through ``repro serve`` as a real
subprocess -- the same smoke the CI ``obs-overhead`` job runs: start
the server, scrape ``/metrics`` and ``/health``, assert the scrape
parses.  Part of the service mode of the observability pipeline
(ROADMAP item 5).
"""

from __future__ import annotations

import json
import os
import random
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.facade import Simulation
from repro.mutex import CriticalResource, L2Mutex
from repro.obs import TelemetryServer
from repro.workload import MutexWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_running_sim():
    sim = Simulation(n_mss=3, n_mh=9, seed=3, monitors=True,
                     monitor_mode="batched")
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    MutexWorkload(sim.network, mutex, sim.mh_ids, request_rate=0.05,
                  rng=random.Random(4))
    sim.run(until=200.0)
    sim.monitor_hub.drain_batches()
    return sim


def fetch(url: str) -> bytes:
    return urllib.request.urlopen(url, timeout=10).read()


class TestTelemetryServer:
    @pytest.fixture()
    def server(self):
        server = TelemetryServer(make_running_sim(), port=0)
        server.start()
        yield server
        server.stop()

    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0
        assert str(server.port) in server.url

    def test_metrics_route(self, server):
        text = fetch(server.url + "/metrics").decode()
        assert "# HELP repro_sends_total" in text
        assert "repro_obs_ledger_rows_total" in text
        assert "repro_obs_certified_until" in text

    def test_health_route(self, server):
        payload = json.loads(fetch(server.url + "/health"))
        assert payload["status"] == "ok"
        assert payload["monitoring"] is True
        assert payload["sim_time"] == pytest.approx(200.0)

    def test_invariants_route(self, server):
        payload = json.loads(fetch(server.url + "/invariants"))
        assert payload["ok"] is True
        assert payload["drains"] >= 1
        assert payload["rows_dispatched"] > 0
        assert payload["certified_until"] == pytest.approx(200.0)
        assert "mutex-exclusivity" in payload["monitors"]
        for record in payload["monitors"].values():
            assert record["violations"] == 0

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_certification_advances_with_drains(self, server):
        sim = server.sim
        before = json.loads(fetch(server.url + "/invariants"))
        sim.run(until=260.0)
        sim.monitor_hub.drain_batches()
        after = json.loads(fetch(server.url + "/invariants"))
        assert after["certified_until"] > before["certified_until"]
        assert after["drains"] > before["drains"]

    def test_monitorless_sim_still_serves(self):
        sim = Simulation(n_mss=2, n_mh=2, seed=1)
        with TelemetryServer(sim, port=0) as server:
            payload = json.loads(fetch(server.url + "/health"))
            assert payload["monitoring"] is False
            inv = json.loads(fetch(server.url + "/invariants"))
            assert inv == {"monitors": {}, "ok": True, "drains": 0,
                           "rows_dispatched": 0, "certified_until": 0.0}
            text = fetch(server.url + "/metrics").decode()
            assert "repro_obs_sim_time" in text


class TestServeSubcommand:
    def test_serve_endpoint_smoke(self):
        """End-to-end: `repro serve` as a subprocess, scraped over
        real HTTP while it lingers after a bounded run."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--port", "0", "--duration", "200", "--n-mh", "12",
             "--linger", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO_ROOT,
        )
        try:
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                match = re.search(r"serving on (http://\S+)", line or "")
                if match:
                    url = match.group(1)
                    break
            assert url, "serve never printed its URL"
            # The run itself takes well under the linger window; poll
            # until the bounded run finishes (pending_events drains).
            payload = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                payload = json.loads(fetch(url + "/health"))
                if payload["sim_time"] >= 200.0:
                    break
                time.sleep(0.2)
            assert payload is not None
            assert payload["status"] == "ok"
            metrics = fetch(url + "/metrics").decode()
            from test_monitor_prometheus import parse_exposition

            families = parse_exposition(metrics)
            assert "repro_obs_events_processed" in families
        finally:
            proc.terminate()
            proc.wait(timeout=20)
