"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import CostModel, CriticalResource, NetworkConfig, Simulation
from repro.net import ConstantLatency

# Exposes the declarative scenario pack as parametrized fixtures
# (``scenario_spec`` / ``scenario_seed``) -- see tests/test_scenario_pack.py.
pytest_plugins = ["repro.scenario.pytest_plugin"]


def make_sim(
    n_mss: int = 4,
    n_mh: int = 8,
    seed: int = 1,
    placement: str = "round_robin",
    search: str = "abstract",
    fixed_latency: float = 1.0,
    wireless_latency: float = 0.5,
    **config_kwargs,
) -> Simulation:
    """A small deterministic simulation with constant latencies."""
    config = NetworkConfig(
        fixed_latency=ConstantLatency(fixed_latency),
        wireless_latency=ConstantLatency(wireless_latency),
        **config_kwargs,
    )
    return Simulation(
        n_mss=n_mss,
        n_mh=n_mh,
        seed=seed,
        config=config,
        search=search,
        placement=placement,
    )


@pytest.fixture
def sim() -> Simulation:
    return make_sim()


@pytest.fixture
def resource(sim) -> CriticalResource:
    return CriticalResource(sim.scheduler)


@pytest.fixture
def costs() -> CostModel:
    return CostModel(c_fixed=1.0, c_wireless=5.0, c_search=10.0)
