"""Tests for the regional (two-level) search protocol."""

from __future__ import annotations

import pytest

from repro import Category
from repro.errors import ConfigurationError
from repro.net.messages import Message
from repro.net.regional_search import RegionalSearch

from conftest import make_sim


def build(n_mss=8, region_size=4):
    protocol = RegionalSearch(region_size=region_size)
    sim = make_sim(n_mss=n_mss, n_mh=3, search=protocol)
    for i in range(3):
        sim.mh(i).register_handler("rs.msg", lambda m: None)
    return sim, protocol


def send(sim, dst, scope="rs", on_disconnected=None):
    sim.network.send_to_mh(
        "mss-0", dst,
        Message(kind="rs.msg", src="mss-0", dst=dst, scope=scope),
        on_disconnected=on_disconnected,
    )


class TestPartitioning:
    def test_region_indices(self):
        sim, protocol = build(n_mss=8, region_size=4)
        assert protocol.region_index(sim.network, "mss-0") == 0
        assert protocol.region_index(sim.network, "mss-3") == 0
        assert protocol.region_index(sim.network, "mss-4") == 1
        assert protocol.region_members(sim.network, 1) == [
            "mss-4", "mss-5", "mss-6", "mss-7"
        ]

    def test_invalid_region_size(self):
        with pytest.raises(ConfigurationError):
            RegionalSearch(region_size=0)


class TestSearchCost:
    def test_probe_count_is_region_bound(self):
        sim, protocol = build(n_mss=8, region_size=4)
        send(sim, "mh-1")
        sim.drain()
        # home query+reply (2) + region probes (4) + reply (1)
        # + forward (1).
        assert sim.metrics.total(Category.SEARCH_PROBE, "rs") == 8

    def test_cost_scales_with_region_size_not_m(self):
        costs = {}
        for m, r in ((8, 2), (16, 2)):
            protocol = RegionalSearch(region_size=r)
            sim = make_sim(n_mss=m, n_mh=3, search=protocol)
            sim.mh(1).register_handler("rs.msg", lambda msg: None)
            send(sim, "mh-1")
            sim.drain()
            costs[m] = sim.metrics.total(Category.SEARCH_PROBE, "rs")
        assert costs[8] == costs[16]  # independent of M


class TestMaintenance:
    def test_intra_region_move_costs_nothing(self):
        sim, protocol = build(n_mss=8, region_size=4)
        before = sim.metrics.total(Category.FIXED, "search-maintenance")
        sim.mh(0).move_to("mss-2")  # stays in region 0
        sim.drain()
        assert sim.metrics.total(
            Category.FIXED, "search-maintenance"
        ) == before
        assert protocol.region_crossings == 0

    def test_region_crossing_updates_directory(self):
        sim, protocol = build(n_mss=8, region_size=4)
        before = sim.metrics.total(Category.FIXED, "search-maintenance")
        sim.mh(0).move_to("mss-5")  # region 0 -> region 1
        sim.drain()
        assert protocol.region_crossings == 1
        assert sim.metrics.total(
            Category.FIXED, "search-maintenance"
        ) >= before

    def test_search_finds_mover_after_crossing(self):
        sim, protocol = build(n_mss=8, region_size=4)
        sim.mh(1).move_to("mss-6")
        sim.drain()
        send(sim, "mh-1")
        sim.drain()
        assert sim.metrics.total(Category.WIRELESS, "rs") == 1

    def test_search_finds_mover_within_region(self):
        sim, protocol = build(n_mss=8, region_size=4)
        sim.mh(1).move_to("mss-3")  # stays in region 0
        sim.drain()
        send(sim, "mh-1")
        sim.drain()
        assert sim.metrics.total(Category.WIRELESS, "rs") == 1


class TestRobustness:
    def test_disconnected_resolves_to_status(self):
        sim, protocol = build()
        outcomes = []
        sim.mh(1).disconnect()
        sim.drain()
        send(sim, "mh-1", on_disconnected=outcomes.append)
        sim.drain()
        assert len(outcomes) == 1
        assert outcomes[0].disconnected

    def test_in_transit_mh_found_after_landing(self):
        sim, protocol = build()
        sim.mh(1).move_to("mss-7")
        send(sim, "mh-1")
        sim.drain()
        assert sim.metrics.total(Category.WIRELESS, "rs") == 1

    def test_facade_accepts_regional_by_name(self):
        sim = make_sim(n_mss=4, n_mh=1, search="regional")
        assert isinstance(sim.network.search_protocol, RegionalSearch)
