"""Prometheus text-format conformance of the telemetry exports.

The HealthMonitor's ``to_prometheus`` page and the live ``/metrics``
endpoint (repro.obs.service) must both emit well-formed exposition
text: every family introduced by exactly one ``# HELP`` and one
``# TYPE`` line before its samples, label values escaped per the
format (backslash, double-quote, newline), and no family emitted
twice.  Scrapers reject pages that violate any of these.
"""

from __future__ import annotations

import random
import re

from repro.facade import Simulation
from repro.monitor.health import HealthMonitor, escape_label_value

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_exposition(text: str):
    """Validate exposition text; returns {family: [sample lines]}.

    Raises AssertionError on malformed lines, HELP/TYPE violations,
    or duplicate families -- the checks a scraper's parser performs.
    """
    families: dict = {}
    helped: set = set()
    typed: set = set()
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert name not in helped, f"duplicate HELP for {name}"
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            name, kind = parts[2], parts[3]
            assert kind in ("gauge", "counter", "histogram", "summary",
                            "untyped")
            assert name not in typed, f"duplicate TYPE for {name}"
            assert name in helped, f"TYPE before HELP for {name}"
            typed.add(name)
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        assert name in typed, f"sample before TYPE for {name}"
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            consumed = ",".join(
                f'{k}="{v}"' for k, v in LABEL_RE.findall(body)
            )
            assert consumed == body, f"malformed labels: {labels!r}"
        float(match.group("value"))  # value must parse
        families.setdefault(name, []).append(line)
    return families


class TestEscapeLabelValue:
    def test_passthrough(self):
        assert escape_label_value("mss-0") == "mss-0"

    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_escaped_value_roundtrips_in_label(self):
        hostile = 'mss"0\\x\n'
        line = f'x{{mss="{escape_label_value(hostile)}"}} 1'
        match = SAMPLE_RE.match(line)
        assert match
        ((key, value),) = LABEL_RE.findall(match.group("labels")[1:-1])
        assert key == "mss"


class TestHealthExport:
    def _monitor_with_sample(self, mss_load=None):
        monitor = HealthMonitor()
        monitor.sample(10.0)
        if mss_load is not None:
            monitor.samples[-1]["mss_load"] = mss_load
        return monitor

    def test_wellformed_page(self):
        monitor = self._monitor_with_sample({"mss-0": 3, "mss-1": 1})
        families = parse_exposition(monitor.to_prometheus())
        assert "repro_sends_total" in families
        assert len(families["repro_mss_load"]) == 2

    def test_no_duplicate_families(self):
        monitor = self._monitor_with_sample()
        text = monitor.to_prometheus()
        helps = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(helps) == len(set(helps))
        parse_exposition(text)  # would raise on duplicates

    def test_hostile_label_values_are_escaped(self):
        monitor = self._monitor_with_sample({'mss"0\\\n': 2})
        text = monitor.to_prometheus()
        parse_exposition(text)
        assert '\\"' in text and "\\n" in text

    def test_empty_series_exports_empty_page(self):
        assert HealthMonitor().to_prometheus() == ""


class TestServeMetricsPage:
    def test_live_metrics_page_parses(self):
        """The /metrics payload (health page + repro_obs_* families)
        is one well-formed exposition document."""
        from repro.mutex import CriticalResource, L2Mutex
        from repro.obs import TelemetryServer
        from repro.workload import MutexWorkload

        sim = Simulation(n_mss=2, n_mh=6, seed=3, monitors=True,
                         monitor_mode="batched")
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
        MutexWorkload(sim.network, mutex, sim.mh_ids,
                      request_rate=0.05, rng=random.Random(4))
        sim.run(until=120.0)
        sim.monitor_hub.drain_batches()
        server = TelemetryServer(sim, port=0)
        try:
            families = parse_exposition(server.metrics_text())
        finally:
            server.stop()
        assert "repro_sends_total" in families
        assert "repro_obs_ledger_drains_total" in families
        assert "repro_obs_wall_seconds" in families
        assert "repro_obs_violations" in families
