"""Unit tests for the batched ledger mechanics (repro.obs.ledger).

The hot-path half of the batched observability pipeline: appender
closures handed out by :meth:`MonitorHub.call_site_batch`, the shared
append segment, drain triggers (segment fill / explicit), and the
counters the ``/invariants`` endpoint reports.  Equivalence with
per-event dispatch is covered separately in test_obs_equivalence.py.
"""

from __future__ import annotations

from repro.monitor import MonitorHub, default_monitors
from repro.obs.ledger import (
    HEALTH_RECV,
    HEALTH_SEND,
    LIVENESS_TICK,
    LIVENESS_WIRELESS_UP,
    health_code,
    liveness_code,
)


class FakeScheduler:
    def __init__(self):
        self.now = 0.0
        self.events_processed = 0
        self.pending_count = 0


def make_hub(**kwargs):
    kwargs.setdefault("record", False)
    hub = MonitorHub(None, default_monitors(), batch=True, **kwargs)
    hub.scheduler = FakeScheduler()
    return hub


class TestEtypeCodes:
    def test_health_codes(self):
        assert health_code("send.fixed") == HEALTH_SEND
        assert health_code("send.wireless_up") == HEALTH_SEND
        assert health_code("recv") == HEALTH_RECV
        assert health_code("mh.join") == 0

    def test_liveness_codes(self):
        assert liveness_code("send.fixed") == LIVENESS_TICK
        assert liveness_code("send.wireless_up") == LIVENESS_WIRELESS_UP
        assert liveness_code("recv") == LIVENESS_TICK


class TestCallSiteBatch:
    def test_per_event_hub_hands_out_no_appender(self):
        hub = MonitorHub(None, default_monitors())
        assert hub.call_site_batch("recv") is None

    def test_record_mode_hands_out_no_appender(self):
        # With record=True every event must become a TraceEvent, so
        # sites fall back to emit() and the generic replay.
        hub = make_hub(record=True)
        assert hub.call_site_batch("recv") is None

    def test_appender_returns_monotone_ids(self):
        hub = make_hub()
        append = hub.call_site_batch("recv")
        ids = [append("s", "mss-0", "mss-1", kind="l2.request",
                      parent=None) for _ in range(4)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 4

    def test_rows_share_one_ledger_in_emission_order(self):
        hub = make_hub()
        recv = hub.call_site_batch("recv")
        handoff = hub.call_site_batch("mss.handoff")
        recv("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        handoff("s", "mss-1", "mss-2")
        recv("s", "mss-1", "mss-0", kind="l2.grant", parent=None)
        ledger = hub._ledger
        assert len(ledger) == 3
        ids = [row if isinstance(row, float) else row[0]
               for row in ledger]
        assert ids == sorted(ids)

    def test_drain_replays_and_clears_in_place(self):
        hub = make_hub()
        append = hub.call_site_batch("recv")
        ledger = hub._ledger
        for i in range(10):
            hub.scheduler.now = float(i)
            append("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        assert hub.drain_batches() == 10
        assert hub.drains == 1
        assert hub.rows_dispatched == 10
        # Cleared in place: appenders keep their binding to the list.
        assert hub._ledger is ledger and not ledger
        append("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        assert len(ledger) == 1

    def test_segment_fill_triggers_drain(self):
        hub = make_hub()
        hub._segment_cap = 64
        append = hub.call_site_batch("recv")
        for i in range(64):
            append("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        assert hub.drains == 1
        assert hub.rows_dispatched == 64
        assert not hub._ledger

    def test_certified_until_tracks_drain_clock(self):
        hub = make_hub()
        append = hub.call_site_batch("recv")
        hub.scheduler.now = 12.5
        append("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        assert hub.certified_until == 0.0
        hub.scheduler.now = 40.0
        hub.drain_batches()
        assert hub.certified_until == 40.0

    def test_finalize_drains_pending_rows(self):
        hub = make_hub()
        append = hub.call_site_batch("recv")
        append("s", "mss-0", "mss-1", kind="l2.request", parent=None)
        hub.finalize()
        assert not hub._ledger
        assert hub.rows_dispatched == 1


class TestPlainSendFastRows:
    def test_plain_ticking_send_appends_compact_row(self):
        """Sends that only feed the wildcard monitors land as bare
        timestamps (the dense consume loop folds them into the health
        counters), while gated kinds keep the full row."""
        hub = make_hub()
        append = hub.call_site_batch("send.fixed")
        hub.scheduler.now = 3.0
        append("s", "mss-0", "mss-1", kind="l2.request")
        hub.scheduler.now = 4.0
        append("s", "mss-0", "mss-1", kind="l2.token")
        kinds = [type(row).__name__ for row in hub._ledger]
        assert kinds == ["float", "tuple"]

    def test_compact_rows_still_count_and_tick(self):
        from repro.monitor.health import HealthMonitor
        from repro.monitor.liveness import LivenessMonitor

        hub = make_hub()
        append = hub.call_site_batch("send.fixed")
        for i in range(5):
            hub.scheduler.now = float(i)
            append("s", "mss-0", "mss-1", kind="l2.request")
        hub.drain_batches()
        health = hub.monitor(HealthMonitor)
        liveness = hub.monitor(LivenessMonitor)
        assert health._sends == 5
        assert liveness._last_event_time == 4.0
