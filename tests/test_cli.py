"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, emit=lines.append)
    return code, "\n".join(lines)


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestMutexCommand:
    def test_l2_default_run(self):
        code, out = run_cli([
            "mutex", "--algorithm", "L2", "--duration", "200",
            "--seed", "3",
        ])
        assert code == 0
        assert "safety         : verified" in out
        assert "region accesses" in out

    def test_l1_baseline(self):
        code, out = run_cli([
            "mutex", "--algorithm", "L1", "--n-mss", "4", "--n-mh", "4",
            "--duration", "100",
        ])
        assert code == 0
        assert "baseline" in out

    def test_r1_baseline(self):
        code, out = run_cli([
            "mutex", "--algorithm", "R1", "--n-mss", "4", "--n-mh", "4",
            "--duration", "200",
        ])
        assert code == 0
        assert "region accesses" in out

    def test_r2_variants(self):
        for name in ("R2", "R2'", "R2''"):
            code, out = run_cli([
                "mutex", "--algorithm", name, "--duration", "200",
                "--request-rate", "0.02", "--seed", "5",
            ])
            assert code == 0
            assert "safety         : verified" in out

    def test_with_mobility_and_broadcast_search(self):
        code, out = run_cli([
            "mutex", "--algorithm", "L2", "--duration", "200",
            "--move-rate", "0.02", "--search", "broadcast",
        ])
        assert code == 0
        assert "search_probe" in out

    def test_deterministic_for_seed(self):
        run = lambda: run_cli([
            "mutex", "--algorithm", "L2", "--duration", "150",
            "--seed", "9", "--move-rate", "0.01",
        ])
        assert run() == run()


class TestGroupsCommand:
    @pytest.mark.parametrize("strategy", [
        "pure_search", "always_inform", "location_view",
    ])
    def test_each_strategy_runs(self, strategy):
        code, out = run_cli([
            "groups", "--strategy", strategy, "--duration", "300",
            "--move-rate", "0.01", "--group-size", "5",
        ])
        assert code == 0
        assert "effective cost" in out
        assert "MOB/MSG" in out

    def test_location_view_reports_view_stats(self):
        code, out = run_cli([
            "groups", "--strategy", "location_view", "--duration", "300",
        ])
        assert "significant f" in out
        assert "|LV| now/max" in out

    def test_group_size_validated(self):
        with pytest.raises(SystemExit):
            run_cli([
                "groups", "--group-size", "20", "--n-mh", "5",
            ])


class TestProxyCommand:
    @pytest.mark.parametrize("policy", ["fixed", "local", "adaptive"])
    def test_each_policy_runs(self, policy):
        code, out = run_cli([
            "proxy", "--policy", policy, "--duration", "300",
            "--move-rate", "0.02",
        ])
        assert code == 0
        assert "letters" in out
        assert "delivered" in out

    def test_all_letters_delivered(self):
        code, out = run_cli([
            "proxy", "--policy", "fixed", "--duration", "400",
            "--move-rate", "0.05", "--seed", "2",
        ])
        line = next(l for l in out.splitlines() if "letters" in l)
        sent = int(line.split("sent=")[1].split()[0])
        delivered = int(line.split("delivered=")[1].split()[0])
        assert sent == delivered


def test_cost_model_flags_affect_report():
    _, cheap = run_cli([
        "mutex", "--algorithm", "L2", "--duration", "100", "--seed", "1",
        "--c-wireless", "1", "--c-search", "1",
    ])
    _, costly = run_cli([
        "mutex", "--algorithm", "L2", "--duration", "100", "--seed", "1",
        "--c-wireless", "50", "--c-search", "100",
    ])
    def total(out):
        line = next(l for l in out.splitlines() if "total cost" in l)
        return float(line.split(":")[1])
    assert total(costly) > total(cheap)


class TestMulticastCommand:
    def test_exactly_once_under_mobility(self):
        code, out = run_cli([
            "multicast", "--duration", "300", "--move-rate", "0.02",
            "--seed", "4",
        ])
        assert code == 0
        assert "exactly once   : True" in out

    def test_gc_flag(self):
        code, out = run_cli([
            "multicast", "--duration", "200", "--no-gc",
        ])
        assert code == 0
        assert "GC disabled" in out

    def test_group_size_validated(self):
        with pytest.raises(SystemExit):
            run_cli(["multicast", "--group-size", "99"])


class TestCompareCommand:
    def test_all_comparisons_match(self):
        code, out = run_cli(["compare"])
        assert code == 0
        assert "MISMATCH" not in out
        assert "all comparisons matched" in out

    @pytest.mark.parametrize("experiment", ["lamport", "ring", "groups"])
    def test_single_experiment(self, experiment):
        code, out = run_cli(["compare", "--experiment", experiment])
        assert code == 0
        assert "OK" in out

    def test_custom_cost_model(self):
        code, out = run_cli([
            "compare", "--c-fixed", "2", "--c-wireless", "7",
            "--c-search", "20",
        ])
        assert code == 0
        assert "all comparisons matched" in out

    def test_custom_sizes(self):
        code, out = run_cli([
            "compare", "--n-mss", "10", "--n-mh", "20",
        ])
        assert code == 0
        assert "N=20" in out and "M=10" in out


class TestPerfCommand:
    def test_list_scenarios(self):
        code, out = run_cli(["perf", "--list"])
        assert code == 0
        assert "smoke_mutex" in out and "[smoke]" in out

    def test_single_scenario_runs(self):
        code, out = run_cli([
            "perf", "--scenario", "smoke_search", "--repeats", "1",
        ])
        assert code == 0
        assert "smoke_search" in out and "ev/s" in out

    @staticmethod
    def _baseline(tmp_path, eps):
        import json

        from repro.perf import SCHEMA

        # No calibration field: deltas fall back to raw ratios, which
        # keeps the pass/fail outcome machine-independent.
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps({
            "schema": SCHEMA,
            "scenarios": {
                "smoke_search": {"events_per_sec": eps},
                "not_in_registry": {"events_per_sec": 1.0},
            },
        }))
        return str(path)

    def test_compare_prints_delta_table_and_gate_margins(self, tmp_path):
        code, out = run_cli([
            "perf", "--scenario", "smoke_search", "--repeats", "1",
            "--compare", self._baseline(tmp_path, eps=1.0),
        ])
        assert code == 0
        assert "baseline ev/s" in out and "current ev/s" in out
        assert "gate margins" in out and "above floor" in out
        # scenarios only present in the baseline are skipped, not fatal
        assert "not_in_registry" not in out

    def test_compare_fails_on_regression_past_the_floor(self, tmp_path):
        code, out = run_cli([
            "perf", "--scenario", "smoke_search", "--repeats", "1",
            "--compare", self._baseline(tmp_path, eps=1e12),
        ])
        assert code == 1
        assert "REGRESSION" in out and "floor" in out

    def test_compare_rejects_missing_baseline(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli([
                "perf", "--scenario", "smoke_search", "--repeats", "1",
                "--compare", str(tmp_path / "nope.json"),
            ])

    def test_compare_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": 99, "scenarios": {}}')
        with pytest.raises(SystemExit):
            run_cli([
                "perf", "--scenario", "smoke_search", "--repeats", "1",
                "--compare", str(path),
            ])
