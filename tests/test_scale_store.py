"""The array-backed population store: promotion, demotion, mass ops.

ROADMAP item 2's correctness story in unit form: promotion restores
exactly the state the object path would have, demotion writes it back
losslessly (the hypothesis round-trip property), the cap never demotes
pinned hosts, and the batched cohort ops keep Section 2's message bill
while staying O(1) in scheduler events and metrics entries.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Simulation
from repro.errors import ConfigurationError, SimulationError
from repro.metrics import Category
from repro.scale import CROWD_ID, CrowdChurn, FixedHistogram, Welford


def make_sim(n_mss=4, n_mh=12, **kwargs):
    return Simulation(n_mss=n_mss, n_mh=n_mh, seed=7,
                      population_store=True, **kwargs)


# ----------------------------------------------------------------------
# Construction and identity
# ----------------------------------------------------------------------

def test_store_starts_fully_passive():
    sim = make_sim()
    pop = sim.population
    assert pop.n == 12
    assert pop.active_count == 0
    assert pop.passive_connected == 12
    assert pop.passive_disconnected == 0
    # round_robin placement: 3 passive hosts per cell.
    assert pop.occupancy() == [3, 3, 3, 3]
    assert pop.memory_bytes() > 0


def test_id_parsing_rejects_aliases():
    pop = make_sim().population
    assert pop.covers("mh-0") and pop.covers("mh-11")
    assert not pop.covers("mh-12")
    assert not pop.covers("mh-01")      # zero-padded alias
    assert not pop.covers("mh--1")
    assert not pop.covers("mss-0")
    assert not pop.covers("mh-")


def test_max_active_requires_store():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=2, n_mh=4, max_active=8)


def test_recovery_is_gated_with_store():
    with pytest.raises(ConfigurationError):
        Simulation(n_mss=2, n_mh=4, population_store=True,
                   recovery="per-message")


# ----------------------------------------------------------------------
# Promotion / demotion
# ----------------------------------------------------------------------

def test_promotion_is_transparent_and_counted():
    sim = make_sim()
    pop = sim.population
    mh = sim.mh(5)
    assert mh.is_connected
    assert mh.current_mss_id == "mss-1"
    assert pop.active_count == 1
    assert pop.promotions == 1
    assert not pop.owns("mh-5")
    assert pop.passive_connected == 11
    # The cell's occupancy moved from the arrays to the MSS set.
    assert pop.occupancy()[1] == 2
    assert sim.network.mss("mss-1").is_local("mh-5")


def test_promotion_is_idempotent():
    sim = make_sim()
    a = sim.mh(3)
    b = sim.mh(3)
    assert a is b
    assert sim.population.promotions == 1


def test_passive_queries_do_not_promote():
    sim = make_sim()
    pop = sim.population
    assert sim.network.mss("mss-2").is_local("mh-2")
    assert not sim.network.is_mh_crashed("mh-2")
    assert pop.passive_local("mh-2", "mss-2")
    assert not pop.passive_local("mh-2", "mss-0")
    assert pop.active_count == 0


def test_demote_round_trips_a_moved_host():
    sim = make_sim()
    pop = sim.population
    mh = sim.mh(0)
    mh.move_to("mss-3")
    sim.drain()
    moves, session = mh.moves_completed, mh.session
    pop.demote("mh-0")
    assert pop.owns("mh-0")
    assert pop.active_count == 0
    again = sim.mh(0)
    assert again.moves_completed == moves
    assert again.session == session
    assert again.current_mss_id == "mss-3"


def test_demote_refuses_pinned_hosts():
    sim = make_sim()
    mh = sim.mh(1)
    mh.register_handler("app.x", lambda msg: None)
    assert not sim.population.demotable(mh)
    with pytest.raises(SimulationError):
        sim.population.demote("mh-1")


def test_demote_refuses_in_transit():
    sim = make_sim()
    mh = sim.mh(1)
    mh.move_to("mss-0")          # IN_TRANSIT until drained
    with pytest.raises(SimulationError):
        sim.population.demote("mh-1")
    sim.drain()
    sim.population.demote("mh-1")


def test_active_cap_demotes_oldest_clean():
    sim = Simulation(n_mss=4, n_mh=40, seed=7,
                     population_store=True, max_active=4)
    pop = sim.population
    for i in range(10):
        sim.mh(i)
    assert pop.active_count <= 4
    assert pop.demotions >= 6


def test_pinned_hosts_survive_the_cap():
    sim = Simulation(n_mss=4, n_mh=40, seed=7,
                     population_store=True, max_active=2)
    pop = sim.population
    pinned = sim.mh(0)
    pinned.register_handler("app.x", lambda msg: None)
    for i in range(1, 8):
        sim.mh(i)
    assert not pop.owns("mh-0")
    assert sim.network.mobile_host("mh-0") is pinned


def test_stale_husk_is_poisoned():
    sim = make_sim()
    pop = sim.population
    mh = sim.mh(2)
    session = mh.session
    pop.demote("mh-2")
    assert mh.session == session + 1     # husk poisoned
    fresh = sim.mh(2)
    assert fresh is not mh
    assert fresh.session == session      # array kept the real value


# ----------------------------------------------------------------------
# Hypothesis: promote -> mutate -> demote -> promote is lossless
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["move", "disconnect", "reconnect"]),
                  st.integers(min_value=0, max_value=3)),
        max_size=6,
    )
)
def test_promotion_demotion_round_trip_property(ops):
    sim = make_sim()
    pop = sim.population
    mh = sim.mh(4)
    for op, cell in ops:
        if op == "move" and mh.is_connected:
            if f"mss-{cell}" != mh.current_mss_id:
                mh.move_to(f"mss-{cell}")
        elif op == "disconnect" and mh.is_connected:
            mh.disconnect()
        elif op == "reconnect" and mh.is_disconnected:
            mh.reconnect(f"mss-{cell}", supply_prev=True)
        sim.drain()
    fields = (
        mh.state, mh.current_mss_id, mh.disconnect_mss_id,
        mh.session, mh.last_received_seq, mh.moves_completed,
        mh.doze_interruptions, mh.orphaned, mh.crashed, mh.dozing,
    )
    pop.demote("mh-4")
    again = sim.mh(4)
    assert fields == (
        again.state, again.current_mss_id, again.disconnect_mss_id,
        again.session, again.last_received_seq, again.moves_completed,
        again.doze_interruptions, again.orphaned, again.crashed,
        again.dozing,
    )
    # MSS-side views round-trip too.
    if again.is_connected:
        assert sim.network.mss(again.current_mss_id).is_local("mh-4")
    elif again.disconnect_mss_id is not None:
        station = sim.network.mss(again.disconnect_mss_id)
        assert "mh-4" in station.disconnected_mhs


# ----------------------------------------------------------------------
# Mass operations
# ----------------------------------------------------------------------

def test_mass_move_updates_arrays_and_bills_section2():
    sim = make_sim(n_mss=4, n_mh=100)
    pop = sim.population
    before = sim.metrics.snapshot()
    moved = pop.mass_move(0.5, random.Random(1))
    assert moved > 0
    delta = sim.metrics.since(before)
    # Section 2 move bill: leave + join uplinks, handoff req + reply.
    assert delta.total(Category.WIRELESS, "mobility") == 2 * moved
    assert delta.total(Category.FIXED, "mobility") == 2 * moved
    assert delta.energy(CROWD_ID) == 2 * moved
    assert sum(pop.occupancy()) == 100
    assert sim.scheduler.pending_count == 0   # no events scheduled


def test_mass_disconnect_then_reconnect_round_trips_counts():
    sim = make_sim(n_mss=4, n_mh=100)
    pop = sim.population
    rng = random.Random(2)
    dropped = pop.mass_disconnect(0.3, rng)
    assert dropped > 0
    assert pop.passive_disconnected == dropped
    assert sum(pop.occupancy()) == 100 - dropped
    rejoined = pop.mass_reconnect(1.0, rng)
    assert 0 < rejoined <= dropped
    assert pop.passive_disconnected == dropped - rejoined
    assert pop.downtime.count == rejoined


def test_mass_ops_skip_promoted_hosts():
    sim = make_sim(n_mss=4, n_mh=20)
    pop = sim.population
    mh = sim.mh(0)
    cell_before = mh.current_mss_id
    for seed in range(5):
        pop.mass_move(1.0, random.Random(seed))
    assert mh.current_mss_id == cell_before


def test_crowd_telemetry_stays_bounded():
    sim = make_sim(n_mss=4, n_mh=200)
    pop = sim.population
    rng = random.Random(3)
    for _ in range(10):
        pop.mass_move(0.2, rng)
        pop.mass_disconnect(0.05, rng)
        pop.mass_reconnect(0.5, rng)
    summary = pop.summary()
    assert summary["batch_ops"] == 30
    assert summary["move_interval"]["count"] > 0
    assert summary["downtime"]["count"] > 0
    # Histograms are fixed-size regardless of how much was recorded.
    assert len(pop.move_interval_hist.counts) == \
        len(pop.move_interval_hist.edges)
    # Energy landed on the single crowd pseudo-id, not per-MH entries.
    snap = sim.metrics.snapshot()
    assert set(snap.energy_tx) == {CROWD_ID}


# ----------------------------------------------------------------------
# CrowdChurn driver
# ----------------------------------------------------------------------

def test_crowd_churn_drives_mass_ops_on_a_tick():
    sim = make_sim(n_mss=4, n_mh=200)
    churn = CrowdChurn(sim.population, sim.scheduler, tick=5.0,
                       move_fraction=0.1, disconnect_fraction=0.05,
                       reconnect_fraction=0.5, rng=random.Random(4))
    churn.start()
    sim.run(until=50.0)
    churn.stop()
    sim.drain()
    assert churn.ticks == 10
    assert churn.moved > 0
    assert churn.disconnected > 0
    assert churn.reconnected > 0
    assert sim.population.active_count == 0


def test_crowd_churn_rejects_bad_tick():
    sim = make_sim()
    with pytest.raises(ConfigurationError):
        CrowdChurn(sim.population, sim.scheduler, tick=0.0)


# ----------------------------------------------------------------------
# Streaming statistics
# ----------------------------------------------------------------------

def test_welford_matches_batch_statistics():
    values = [random.Random(9).uniform(-50, 50) for _ in range(500)]
    w = Welford()
    for v in values:
        w.add(v)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    assert w.count == 500
    assert w.mean == pytest.approx(mean)
    assert w.variance == pytest.approx(var)
    assert w.min == min(values) and w.max == max(values)


def test_fixed_histogram_bins_and_overflow():
    h = FixedHistogram((1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0, 5000.0):
        h.add(v)
    assert h.counts == [1, 1, 1]
    assert h.total == 5
    assert h.overflow == 2
    assert h.as_dict()["bins"] == {"<=1": 1, "<=10": 1, "<=100": 1}
    with pytest.raises(ConfigurationError):
        FixedHistogram((5.0, 1.0))
