#!/usr/bin/env python3
"""Section 4 scenario: a conference crew messaging while roaming.

A group of mobile hosts (think: staff devices at a multi-building
conference) exchanges group messages while members wander.  Two
mobility regimes are compared under all three location-management
strategies:

* *localized* -- members hop among the three conference buildings, so
  most moves are insignificant for the location view;
* *nomadic* -- members roam the whole campus uniformly.

The script prints the measured effective cost per group message next
to the paper's formulas, illustrating the search/inform trade-off and
why the location view wins for clustered groups.

Run:  python examples/conference_group.py
"""

from __future__ import annotations

import random

from repro import Simulation
from repro.analysis import formulas
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)
from repro.mobility import LocalizedMobility, UniformMobility
from repro.workload import GroupMessagingWorkload

N_MSS = 12      # campus cells
GROUP = 6       # crew size
DURATION = 2000.0
MSG_RATE = 0.05
MOVE_RATE = 0.01  # per member


def run(strategy_name: str, regime: str, seed: int = 5):
    sim = Simulation(
        n_mss=N_MSS, n_mh=GROUP, seed=seed,
        placement=[i % 3 for i in range(GROUP)],  # start in 3 buildings
    )
    members = sim.mh_ids
    strategy = {
        "pure search": PureSearchGroup,
        "always inform": AlwaysInformGroup,
        "location view": LocationViewGroup,
    }[strategy_name](sim.network, members)
    workload = GroupMessagingWorkload(
        sim.network, strategy, message_rate=MSG_RATE,
        rng=random.Random(seed + 1),
    )
    if regime == "localized":
        mobility = LocalizedMobility(
            sim.network, members, move_rate=MOVE_RATE,
            rng=random.Random(seed + 2),
            home_cells=["mss-0", "mss-1", "mss-2"],
        )
    else:
        mobility = UniformMobility(
            sim.network, members, move_rate=MOVE_RATE,
            rng=random.Random(seed + 2),
        )
    sim.run(until=DURATION)
    workload.stop()
    mobility.stop()
    sim.drain()
    stats = strategy.stats
    cost = sim.cost(strategy.scope)
    effective = cost / stats.messages if stats.messages else float("nan")
    return sim, strategy, effective


def main() -> None:
    costs = Simulation(n_mss=2, n_mh=0).cost_model
    for regime in ("localized", "nomadic"):
        print(f"=== {regime} crew "
              f"(|G|={GROUP}, {N_MSS} cells, msg rate {MSG_RATE}, "
              f"move rate {MOVE_RATE}/member) ===")
        print(f"{'strategy':<16}{'eff. cost/msg':>14}{'MOB/MSG':>9}"
              f"{'f':>7}{'missed':>8}")
        print("-" * 56)
        rows = {}
        for name in ("pure search", "always inform", "location view"):
            sim, strategy, effective = run(name, regime)
            stats = strategy.stats
            rows[name] = effective
            f = stats.significant_fraction if name == "location view" \
                else float("nan")
            print(f"{name:<16}{effective:>14.1f}"
                  f"{stats.mobility_to_message_ratio:>9.2f}"
                  f"{f:>7.2f}{stats.missed:>8}")
        winner = min(rows, key=rows.get)
        print(f"cheapest: {winner}")
        print()
    print("Paper's analytic predictions (per message):")
    ratio = GROUP * MOVE_RATE / MSG_RATE
    print(f"  pure search    : "
          f"{formulas.pure_search_message_cost(GROUP, costs):.1f} "
          f"(mobility independent)")
    print(f"  always inform  : "
          f"{formulas.always_inform_effective_cost(GROUP, ratio, costs):.1f}"
          f" at MOB/MSG={ratio:.1f}")
    print(f"  location view  : <= "
          f"{formulas.location_view_effective_cost_bound(3, GROUP, 0.15, ratio, costs):.1f}"
          f" for |LV|max=3, f=0.15 (localized regime)")


if __name__ == "__main__":
    main()
