#!/usr/bin/env python3
"""Quickstart: mutual exclusion for mobile hosts in ten lines.

Builds a small mobile system (4 support stations, 12 mobile hosts),
runs the paper's two-tier Lamport algorithm (L2) for a handful of
requests while hosts wander between cells, and prints the cost report
in the paper's currency.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import CriticalResource, L2Mutex, Simulation
from repro.mobility import UniformMobility
from repro.workload import MutexWorkload


def main() -> None:
    sim = Simulation(n_mss=4, n_mh=12, seed=42)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.5)

    # Hosts request the critical region and move around while waiting.
    workload = MutexWorkload(
        sim.network, mutex, sim.mh_ids, request_rate=0.05,
        rng=random.Random(1),
    )
    mobility = UniformMobility(
        sim.network, sim.mh_ids, move_rate=0.02, rng=random.Random(2)
    )

    sim.run(until=400.0)
    workload.stop()
    mobility.stop()
    sim.drain()

    print(f"requests issued     : {workload.issued}")
    print(f"requests completed  : {workload.completed}")
    print(f"region accesses     : {resource.access_count}")
    resource.assert_no_overlap()
    print("mutual exclusion    : verified (no overlapping accesses)")
    print()
    report = sim.metrics.report(sim.cost_model)
    print("message totals      :", report["totals"])
    print(f"total cost          : {report['cost_total']:.1f}")
    print(f"  L2 algorithm      : {report['cost_by_scope'].get('L2', 0):.1f}")
    print(
        "  mobility protocol :",
        f"{report['cost_by_scope'].get('mobility', 0):.1f}",
    )
    print(f"MH battery (energy) : {report['energy_total']} wireless ops")


if __name__ == "__main__":
    main()
