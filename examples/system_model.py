#!/usr/bin/env python3
"""Figure 1 walkthrough: the system model and its cost currency.

Renders the two-tier architecture (static MSS backbone + wireless
cells), then demonstrates each primitive of Section 2 with live cost
accounting:

* a fixed-network message (C_fixed),
* a wireless hop (C_wireless),
* a MSS -> remote MH delivery (C_search + C_wireless),
* a MH -> MH message (2*C_wireless + C_search),
* a move (leave(r) / join / handoff),
* a disconnect / reconnect cycle.

Run:  python examples/system_model.py
"""

from __future__ import annotations

from repro import Simulation
from repro.net.messages import Message

M, N = 4, 6


def banner(sim: Simulation) -> None:
    print("  static (fixed) network")
    print("  " + " === ".join(sim.mss_ids))
    for i in range(M):
        local = sorted(sim.mss(i).local_mhs)
        cell = ", ".join(local) if local else "(empty)"
        print(f"    cell {sim.mss_id(i)}: {cell}")
    print()


def show_cost(sim: Simulation, label: str, before) -> None:
    delta = sim.metrics.since(before)
    pieces = []
    for category in ("fixed", "wireless", "search"):
        count = {
            "fixed": delta.total(sim_category("fixed")),
            "wireless": delta.total(sim_category("wireless")),
            "search": delta.total(sim_category("search")),
        }[category]
        if count:
            pieces.append(f"{count} {category}")
    cost = delta.cost(sim.cost_model)
    print(f"  {label:<44} cost {cost:>6.1f}  ({', '.join(pieces) or 'free'})")


def sim_category(name):
    from repro import Category
    return Category(name)


def main() -> None:
    sim = Simulation(n_mss=M, n_mh=N, seed=1, placement="round_robin")
    costs = sim.cost_model
    print("The system model of Section 2 "
          f"(M={M} MSSs, N={N} MHs)")
    print(f"C_fixed={costs.c_fixed}, C_wireless={costs.c_wireless}, "
          f"C_search={costs.c_search} "
          f"(C_search >= C_fixed, as required)")
    print()
    banner(sim)

    # Register sink handlers.
    for i in range(M):
        sim.mss(i).register_handler("demo.ping", lambda m: None)
    for i in range(N):
        sim.mh(i).register_handler("demo.ping", lambda m: None)

    print("primitives:")
    before = sim.metrics.snapshot()
    sim.network.send_fixed(Message(
        kind="demo.ping", src="mss-0", dst="mss-3", scope="demo"))
    sim.drain()
    show_cost(sim, "MSS -> MSS (fixed network)", before)

    before = sim.metrics.snapshot()
    sim.mss(0).send_to_local_mh("mh-0", "demo.ping", None, "demo")
    sim.drain()
    show_cost(sim, "MSS -> local MH (one wireless hop)", before)

    before = sim.metrics.snapshot()
    sim.mss(0).send_to_mh("mh-1", "demo.ping", None, "demo")
    sim.drain()
    show_cost(sim, "MSS -> remote MH (search + wireless)", before)

    before = sim.metrics.snapshot()
    sim.mh(0).send_to_mss("demo.ping", None, "demo")
    sim.drain()
    show_cost(sim, "MH -> local MSS (one wireless hop)", before)

    before = sim.metrics.snapshot()
    sim.mh(2).move_to("mss-0")
    sim.drain()
    show_cost(sim, "move: leave(r), join, handoff", before)

    before = sim.metrics.snapshot()
    sim.mh(3).disconnect()
    sim.drain()
    show_cost(sim, "disconnect(r): flag set at mss-3", before)

    before = sim.metrics.snapshot()
    sim.mss(0).send_to_mh(
        "mh-3", "demo.ping", None, "demo",
        on_disconnected=lambda outcome: None,
    )
    sim.drain()
    show_cost(sim, "delivery attempt to disconnected MH", before)

    before = sim.metrics.snapshot()
    sim.mh(3).reconnect("mss-1")
    sim.drain()
    show_cost(sim, "reconnect(mh, prev): handoff clears flag", before)

    print()
    print("after the moves:")
    banner(sim)
    print("derived quantities:")
    print(f"  MH -> MH message: 2*C_wireless + C_search = "
          f"{costs.mh_to_mh():.1f}")
    print(f"  MSS -> non-local MH: C_search + C_wireless = "
          f"{costs.mss_to_remote_mh():.1f}")
    print(f"  worst-case search (probe M-1 MSSs): "
          f"{costs.worst_case_search(M):.1f}")


if __name__ == "__main__":
    main()
