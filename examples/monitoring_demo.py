#!/usr/bin/env python3
"""Catching a protocol violation live with the invariant monitors.

Section 3.4's R2' exists because plain R2 lets a *moving* MH be served
more than once per token traversal: finish your access, hop to the
next MSS on the ring, and ask again before the token passes.  R2'
closes the loophole with a per-MH access counter -- but the counter is
self-reported, so a lying ("malicious") MH can still double-dip.

This script runs that exact attack twice under the online monitors
(``Simulation(monitors=True)``):

1. an **honest** MH replays the move-and-ask-again dance and is
   correctly deferred to the next traversal -- every monitor stays
   green;
2. a **malicious** MH reports an access count of 0 and gets served
   twice at the same token_val -- the ring-fairness monitor flags the
   violation *while the simulation runs*, with the timestamp, the MH,
   and the traversal number attached.

It closes with the health telemetry of the malicious run: the same
gauge samples a dashboard would scrape, exported as JSONL and
Prometheus text.

Run:  python examples/monitoring_demo.py
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    HealthMonitor,
    R2Mutex,
    R2Variant,
    Simulation,
)


def move_and_ask_again(malicious: bool):
    """After its first access, mh-0 hops to the next ring MSS and
    immediately requests again; a malicious mh-0 lies about its count."""
    sim = Simulation(n_mss=3, n_mh=2, seed=3, placement="single_cell",
                     monitors=True)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, cs_duration=1.0,
                    variant=R2Variant.COUNTER, scope="R2'",
                    max_traversals=4)
    if malicious:
        mutex.malicious_mhs.add("mh-0")
    state = {"moved": False}

    def ask_again():
        mutex.request("mh-0")

    def on_done(mh_id):
        if mh_id == "mh-0" and not state["moved"]:
            state["moved"] = True
            sim.mh(0).add_attach_listener(ask_again)
            sim.mh(0).move_to("mss-1")

    mutex.on_complete = on_done
    mutex.request("mh-0")
    mutex.request("mh-1")
    mutex.start()
    sim.drain()
    sim.monitor_hub.finalize()
    return sim, resource


def tell(title: str, sim, resource) -> None:
    print(f"--- {title} ---")
    print(f"  accesses served: {resource.access_count}")
    violations = sim.monitor_hub.violations
    if not violations:
        print("  monitors: all invariants held")
    for violation in violations:
        print(f"  CAUGHT {violation.monitor}: {violation.render()}")
    print()


def main() -> None:
    sim, resource = move_and_ask_again(malicious=False)
    tell("honest MH: deferred to the next traversal", sim, resource)
    assert sim.monitor_hub.ok

    sim, resource = move_and_ask_again(malicious=True)
    tell("malicious MH: double-dips one traversal", sim, resource)
    fairness = [v for v in sim.monitor_hub.violations
                if v.invariant == "ring.fairness"]
    assert fairness, "the fairness monitor missed the double service"
    assert fairness[0].detail["mh"] == "mh-0"

    print("--- health telemetry of the malicious run ---")
    health = sim.monitor_hub.monitor(HealthMonitor)
    for line in health.to_jsonl().splitlines():
        print(f"  {line}")
    print()
    for line in health.to_prometheus().splitlines():
        if not line.startswith("#"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
