#!/usr/bin/env python3
"""Doze mode and disconnection: where the two-tier structure pays off.

A field team of mobile devices shares an uplink slot (the critical
region).  Half the devices doze to save battery and one device
disconnects entirely mid-run.  The script contrasts:

* R1 (token ring over the devices): the dozing devices are interrupted
  on every traversal and the ring stalls the moment the disconnected
  device is the next token recipient;
* R2 (token ring over the base stations): dozing bystanders sleep
  undisturbed, the disconnected device's pending request is skipped
  with a returned token, and everyone else keeps working;
* L2 under a disconnect-after-grant: the region is released as soon as
  the holder reconnects, exactly as Section 3.1.1 prescribes.

Run:  python examples/disconnection_resilience.py
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    L2Mutex,
    R1Mutex,
    R2Mutex,
    Simulation,
)

N = 6


def fresh():
    sim = Simulation(n_mss=N, n_mh=N, seed=9, placement="round_robin")
    return sim, CriticalResource(sim.scheduler)


def r1_story() -> None:
    print("--- R1: ring of devices ---")
    sim, resource = fresh()
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=3)
    for i in (1, 3, 5):
        sim.mh(i).doze()
    mutex.want("mh-0")
    mutex.start()
    sim.drain()
    interruptions = sum(sim.mh(i).doze_interruptions for i in (1, 3, 5))
    print(f"  3 traversals: dozing devices interrupted "
          f"{interruptions} times (even with a single requester)")

    sim, resource = fresh()
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=3)
    sim.mh(2).disconnect()
    sim.drain()
    mutex.want("mh-4")
    mutex.start()
    sim.run(until=500.0)
    print(f"  with mh-2 disconnected: ring stalled on "
          f"{mutex.stalled_on}; accesses served: {resource.access_count}")
    print()


def r2_story() -> None:
    print("--- R2: ring of base stations ---")
    sim, resource = fresh()
    mutex = R2Mutex(sim.network, resource, max_traversals=3)
    for i in (1, 3, 5):
        sim.mh(i).doze()
    mutex.request("mh-0")
    sim.drain()
    mutex.start()
    sim.drain()
    interruptions = sum(sim.mh(i).doze_interruptions for i in (1, 3, 5))
    print(f"  3 traversals: dozing devices interrupted "
          f"{interruptions} times; mh-0 served "
          f"{resource.access_count} time(s)")

    sim, resource = fresh()
    mutex = R2Mutex(sim.network, resource, max_traversals=3)
    mutex.request("mh-2")
    mutex.request("mh-4")
    sim.drain()
    sim.mh(2).disconnect()
    sim.drain()
    mutex.start()
    sim.drain()
    print(f"  with mh-2 disconnected after requesting: skipped "
          f"{mutex.skipped_disconnected}, served "
          f"{resource.holders_in_order()}, ring finished: "
          f"{mutex.finished}")
    print()


def l2_story() -> None:
    print("--- L2: disconnect while holding the region ---")
    sim, resource = fresh()
    mutex = L2Mutex(sim.network, resource, cs_duration=5.0)
    mutex.request("mh-0")
    mutex.request("mh-1")
    while resource.holder != "mh-0":
        sim.scheduler.step()
    print(f"  t={sim.now:.1f}: mh-0 holds the region; disconnecting it")
    sim.mh(0).disconnect()
    sim.run(until=sim.now + 60.0)
    print(f"  t={sim.now:.1f}: completions so far: "
          f"{[m for _, m in mutex.completed]} (mh-1 must wait)")
    sim.mh(0).reconnect("mss-4")
    sim.drain()
    print(f"  after mh-0 reconnects at mss-4: completions "
          f"{[m for _, m in mutex.completed]}")
    resource.assert_no_overlap()
    print("  mutual exclusion preserved throughout")


def main() -> None:
    r1_story()
    r2_story()
    l2_story()


if __name__ == "__main__":
    main()
