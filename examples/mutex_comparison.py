#!/usr/bin/env python3
"""Section 3 head-to-head: L1 vs L2 and R1 vs R2 on the same workload.

Each algorithm serves the same number of critical-region requests from
mobile hosts spread one-per-cell; the script prints measured costs in
the paper's currency next to the closed-form predictions, plus the
battery (energy) story the paper emphasises.

Run:  python examples/mutex_comparison.py
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    L1Mutex,
    L2Mutex,
    R1Mutex,
    R2Mutex,
    Simulation,
)
from repro.analysis import formulas

N = 8   # mobile hosts
M = 8   # support stations (one per host, worst case for searches)


def fresh_sim() -> Simulation:
    return Simulation(n_mss=M, n_mh=N, seed=7, placement="round_robin")


def run_l1():
    sim = fresh_sim()
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource)
    mutex.request("mh-0")
    sim.drain()
    return sim, resource


def run_l2():
    sim = fresh_sim()
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    mutex.request("mh-0")
    sim.mh(0).move_to("mss-3")  # the paper's worst case: mover
    sim.drain()
    return sim, resource


def run_r1():
    sim = fresh_sim()
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=1)
    mutex.want("mh-2")
    mutex.start()
    sim.drain()
    return sim, resource


def run_r2(k: int):
    sim = fresh_sim()
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=1)
    for i in range(k):
        mutex.request(f"mh-{i}")
    sim.drain()
    for i in range(k):
        sim.mh(i).move_to(f"mss-{(i + 2) % M}")
    sim.drain()
    mutex.start()
    sim.drain()
    return sim, resource


def main() -> None:
    costs = Simulation(n_mss=2, n_mh=0).cost_model
    print(f"N = {N} mobile hosts, M = {M} support stations")
    print(
        f"costs: C_fixed={costs.c_fixed}  C_wireless={costs.c_wireless}"
        f"  C_search={costs.c_search}"
    )
    print()
    print(f"{'algorithm':<22}{'measured':>10}{'predicted':>11}"
          f"{'energy':>8}  note")
    print("-" * 72)

    sim, _ = run_l1()
    measured = sim.cost("L1")
    predicted = formulas.l1_execution_cost(N, costs)
    print(f"{'L1 (Lamport on MHs)':<22}{measured:>10.1f}"
          f"{predicted:>11.1f}{sim.metrics.energy():>8}"
          f"  every MH pays battery")

    sim, _ = run_l2()
    measured = sim.cost("L2")
    predicted = formulas.l2_execution_cost(M, costs)
    energy = sim.metrics.energy("mh-0")
    print(f"{'L2 (Lamport on MSSs)':<22}{measured:>10.1f}"
          f"{predicted:>11.1f}{energy:>8}"
          f"  3 wireless msgs, O(1) search")

    sim, _ = run_r1()
    measured = sim.cost("R1")
    predicted = formulas.r1_traversal_cost(N, costs)
    print(f"{'R1 (ring of MHs)':<22}{measured:>10.1f}"
          f"{predicted:>11.1f}{sim.metrics.energy():>8}"
          f"  per traversal, any K")

    for k in (1, 4):
        sim, resource = run_r2(k)
        measured = sim.cost("R2")
        predicted = formulas.r2_traversal_cost(k, M, costs)
        energy = sim.metrics.energy()
        print(f"{f'R2 (ring of MSSs) K={k}':<22}{measured:>10.1f}"
              f"{predicted:>11.1f}{energy:>8}"
              f"  search cost scales with K")

    print()
    print("Paper's claims, observed:")
    print(f"  L2 cheaper than L1 by "
          f"{formulas.l1_execution_cost(N, costs) / formulas.l2_execution_cost(M, costs):.1f}x")
    k_star = (formulas.r1_traversal_cost(N, costs) - M * costs.c_fixed) \
        / formulas.r2_request_cost(costs)
    print(f"  R2 beats R1 whenever K < {k_star:.1f} requests/traversal")


if __name__ == "__main__":
    main()
