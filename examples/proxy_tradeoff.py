#!/usr/bin/env python3
"""Section 5 scenario: fixed vs local proxies for a messaging fleet.

A fleet of couriers exchanges point-to-point messages through proxies
while moving between depots.  With *fixed* proxies every move costs an
inform message but deliveries never search; with *local* proxies moves
are free but every delivery pays a search.  Sweeping the move rate
shows the crossover the paper predicts ("in case of wide area moves and
for MHs that frequently change their cell, [a fixed association] leads
to high message traffic ... we need to look for less static solutions").

Run:  python examples/proxy_tradeoff.py
"""

from __future__ import annotations

import random

from repro import Simulation
from repro.mobility import UniformMobility
from repro.proxy import (
    AdaptiveProxyPolicy,
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxiedMessenger,
    ProxyManager,
)
from repro.sim import PoissonProcess

N_MSS = 10
N_MH = 10
DURATION = 1500.0
MSG_RATE = 0.05  # letters per time unit, fleet-wide


def run(policy_name: str, move_rate: float, seed: int = 3) -> float:
    sim = Simulation(n_mss=N_MSS, n_mh=N_MH, seed=seed)
    policy = {
        "fixed": FixedProxyPolicy,
        "local": LocalProxyPolicy,
        "adaptive": AdaptiveProxyPolicy,
    }[policy_name]()
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    messenger = ProxiedMessenger(manager)
    rng = random.Random(seed + 1)
    sent = [0]

    def send_one() -> None:
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            sent[0] += 1
            messenger.send(src, dst, ("letter", sent[0]))

    traffic = PoissonProcess(sim.scheduler, MSG_RATE, send_one,
                             rng=random.Random(seed + 2))
    mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                               rng=random.Random(seed + 3))
    sim.run(until=DURATION)
    traffic.stop()
    mobility.stop()
    sim.drain()
    if sent[0] == 0:
        return float("nan")
    return sim.cost("proxy") / sent[0]


def main() -> None:
    print(f"fleet of {N_MH} couriers over {N_MSS} depots, "
          f"message rate {MSG_RATE}")
    print()
    print(f"{'move rate/MH':>13} {'fixed':>9} {'local':>9}"
          f" {'adaptive':>9}  winner")
    print("-" * 52)
    for move_rate in (0.001, 0.005, 0.02, 0.08, 0.3):
        fixed = run("fixed", move_rate)
        local = run("local", move_rate)
        adaptive = run("adaptive", move_rate)
        winner = "fixed" if fixed < local else "local"
        print(f"{move_rate:>13} {fixed:>9.1f} {local:>9.1f}"
              f" {adaptive:>9.1f}  {winner}")
    print()
    print("Low mobility favours the fixed proxy (informs are rare and")
    print("deliveries skip the search); high mobility favours the local")
    print("proxy.  The adaptive scope -- the 'less static solution' the")
    print("paper calls for -- switches per host and tracks the better")
    print("static policy at both extremes.")


if __name__ == "__main__":
    main()
