#!/usr/bin/env python3
"""Exactly-once multicast: a field team's order feed.

A dispatch centre multicasts numbered orders to a team of couriers who
ride between cells, doze, and sometimes disconnect entirely.  The
exactly-once multicast (the paper's companion system, reference [1])
buffers orders at every base station and uses the Section-2 handoff to
carry each courier's delivery counter between cells, so that:

* every courier receives every order exactly once, in order;
* a courier that was disconnected for an hour catches up the moment it
  reconnects -- from its new cell's buffer, with no search;
* buffers shrink again once everyone has caught up.

Run:  python examples/field_team_newsfeed.py
"""

from __future__ import annotations

import random

from repro import Simulation
from repro.mobility import UniformMobility
from repro.multicast import ExactlyOnceMulticast
from repro.sim import PoissonProcess

N_MSS = 8
COURIERS = 6
DURATION = 800.0


def main() -> None:
    sim = Simulation(n_mss=N_MSS, n_mh=COURIERS, seed=21)
    team = sim.mh_ids
    feed = ExactlyOnceMulticast(sim.network, team)
    rng = random.Random(7)
    orders = [0]

    def dispatch() -> None:
        sender = team[0]  # mh-0 is the dispatcher's handset
        if sim.network.mobile_host(sender).is_connected:
            orders[0] += 1
            feed.send(sender, f"order-{orders[0]}")

    traffic = PoissonProcess(sim.scheduler, 0.05, dispatch,
                             rng=random.Random(8))
    mobility = UniformMobility(sim.network, team[1:], 0.02,
                               rng=random.Random(9))

    # One courier goes dark for a long stretch mid-run.
    sim.scheduler.schedule(200.0, sim.mh(3).disconnect)
    sim.scheduler.schedule(600.0, sim.mh(3).reconnect, "mss-6")

    def buffer_peak() -> int:
        return max(feed.buffer_size(mss_id) for mss_id in sim.mss_ids)

    peak = [0]
    probe = PoissonProcess(
        sim.scheduler, 0.2,
        lambda: peak.__setitem__(0, max(peak[0], buffer_peak())),
        rng=random.Random(10),
    )

    sim.run(until=DURATION)
    traffic.stop()
    mobility.stop()
    probe.stop()
    sim.drain()

    total = feed.messages_sent
    print(f"orders dispatched     : {total}")
    moves = sum(sim.mh(i).moves_completed for i in range(COURIERS))
    print(f"courier moves         : {moves}")
    print(f"mh-3 offline          : t=200 .. t=600 (reconnected at mss-6)")
    print()
    all_exact = True
    for courier in team:
        seqs = feed.delivered_seqs(courier)
        exact = seqs == list(range(1, total + 1))
        all_exact &= exact
        print(f"  {courier}: {len(seqs)} orders, exactly-once in order: "
              f"{exact}")
    print()
    print(f"peak buffered orders  : {peak[0]} "
          f"(while mh-3 was offline)")
    print(f"final buffered orders : {buffer_peak()} "
          f"(pruned after catch-up)")
    print(f"searches used         : "
          f"{sim.metrics.report()['totals']['search']} "
          f"(location logic fully absorbed by buffering + handoff)")
    assert all_exact


if __name__ == "__main__":
    main()
