#!/usr/bin/env python3
"""Capstone: a day on a mobile campus, every system at once.

One simulated campus (12 cells, 18 devices) runs, concurrently:

* an **L2 mutual exclusion** service guarding a shared uplink slot;
* an **R2' token ring** guarding a second resource (fair variant);
* a **location-view group** of 6 staff devices exchanging messages;
* an **exactly-once multicast** feed of campus announcements;
* an **adaptive-proxy messenger** for device-to-device notes;

while every device wanders (localized mobility) and some disconnect and
return.  At the end the script verifies every invariant and prints a
time-resolved cost breakdown per subsystem -- a figure-style view made
possible by the timeline collector.

Run:  python examples/campus_day.py
"""

from __future__ import annotations

import random

from repro import (
    CriticalResource,
    L2Mutex,
    R2Mutex,
    R2Variant,
    Simulation,
)
from repro.groups import LocationViewGroup
from repro.mobility import DisconnectionModel, LocalizedMobility
from repro.multicast import ExactlyOnceMulticast
from repro.proxy import AdaptiveProxyPolicy, ProxiedMessenger, ProxyManager
from repro.sim import PoissonProcess
from repro.workload import GroupMessagingWorkload, MutexWorkload

N_MSS, N_MH = 12, 18
DAY = 1000.0


def main() -> None:
    sim = Simulation(n_mss=N_MSS, n_mh=N_MH, seed=99, timeline=True)
    rng = random.Random(1)

    # -- subsystems -----------------------------------------------------
    uplink_slot = CriticalResource(sim.scheduler)
    l2 = L2Mutex(sim.network, uplink_slot, cs_duration=0.5, scope="uplink")
    lab_door = CriticalResource(sim.scheduler)
    ring = R2Mutex(sim.network, lab_door, cs_duration=0.5,
                   variant=R2Variant.COUNTER, scope="labdoor")
    staff = sim.mh_ids[:6]
    staff_chat = LocationViewGroup(sim.network, staff, scope="staff")
    everyone = ExactlyOnceMulticast(sim.network, sim.mh_ids,
                                    scope="announce")
    manager = ProxyManager(
        sim.network, AdaptiveProxyPolicy(), sim.mh_ids, scope="notes"
    )
    notes = ProxiedMessenger(manager)

    # -- workloads ------------------------------------------------------
    l2_work = MutexWorkload(sim.network, l2, sim.mh_ids, 0.01,
                            rng=random.Random(2))
    ring_work = MutexWorkload(sim.network, ring, sim.mh_ids[6:], 0.01,
                              rng=random.Random(3))
    chat_work = GroupMessagingWorkload(sim.network, staff_chat, 0.03,
                                       rng=random.Random(4))
    announced = [0]

    def announce() -> None:
        if sim.mh(0).is_connected:
            announced[0] += 1
            everyone.send("mh-0", f"announcement-{announced[0]}")

    announcer = PoissonProcess(sim.scheduler, 0.01, announce,
                               rng=random.Random(5))
    noted = [0]

    def pass_note() -> None:
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            noted[0] += 1
            notes.send(src, dst, ("note", noted[0]))

    noter = PoissonProcess(sim.scheduler, 0.02, pass_note,
                           rng=random.Random(6))
    mobility = LocalizedMobility(
        sim.network, sim.mh_ids, 0.01, rng=random.Random(7),
        home_cells=[f"mss-{i}" for i in range(6)],
        escape_probability=0.15,
    )
    churn = DisconnectionModel(sim.network, sim.mh_ids[1:], 0.001,
                               downtime=30.0, rng=random.Random(8))

    # -- run the day ------------------------------------------------------
    ring.start()
    sim.run(until=DAY)
    for stoppable in (l2_work, ring_work, chat_work, announcer, noter,
                      mobility, churn):
        stoppable.stop()
    deadline = sim.now + 5000.0
    # A requester that disconnected before its token arrived is skipped
    # by R2 (the token returns); those requests never complete.
    while (
        ring_work.completed + len(ring.skipped_disconnected)
        < ring_work.issued
        and sim.now < deadline
    ):
        sim.run(until=sim.now + 50.0)
    ring.max_traversals = 0
    sim.run(until=sim.now + 300.0)
    sim.drain()

    # -- verify every invariant -----------------------------------------
    uplink_slot.assert_no_overlap()
    lab_door.assert_no_overlap()
    aborted = len(l2.aborted)
    assert l2_work.completed + aborted == l2_work.issued
    skipped = len(ring.skipped_disconnected)
    assert ring_work.completed + skipped == ring_work.issued
    total_announcements = everyone.messages_sent
    exact = all(
        everyone.delivered_seqs(device)
        == list(range(1, total_announcements + 1))
        for device in sim.mh_ids
    )
    assert exact
    expected = staff_chat.stats.expected_recipients
    assert staff_chat.stats.deliveries + staff_chat.stats.missed == expected
    assert len(notes.delivered) + len(notes.missed) == noted[0]

    moves = sum(sim.mh(i).moves_completed for i in range(N_MH))
    print(f"campus day complete: t={sim.now:.0f}, "
          f"{moves} device moves, {churn.disconnections} disconnections")
    print()
    print(f"uplink slot (L2)   : {uplink_slot.access_count} accesses "
          f"({aborted} aborted by disconnection), safety verified")
    print(f"lab door (R2')     : {lab_door.access_count} accesses "
          f"({skipped} skipped: requester disconnected), "
          f"safety verified")
    print(f"staff chat (LV)    : {staff_chat.stats.messages} messages, "
          f"{staff_chat.stats.deliveries}/{expected} delivered "
          f"(f={staff_chat.stats.significant_fraction:.2f}, "
          f"|LV| max {staff_chat.max_view_size})")
    print(f"announcements      : {total_announcements} multicast, "
          f"exactly-once to all {N_MH} devices: {exact}")
    print(f"notes (adaptive)   : {len(notes.delivered)}/{noted[0]} "
          f"delivered ({len(notes.missed)} to disconnected devices)")
    print()
    print("cost per subsystem over the day (per 250-time-unit quarter):")
    header = f"{'scope':<12}" + "".join(
        f"{f'Q{q + 1}':>10}" for q in range(4)
    ) + f"{'total':>11}"
    print(header)
    for scope in ("uplink", "labdoor", "staff", "announce", "notes",
                  "mobility"):
        quarters = [
            sim.metrics.cost_between(
                sim.cost_model, q * 250.0, (q + 1) * 250.0, scope
            )
            for q in range(4)
        ]
        total = sim.cost(scope)
        row = f"{scope:<12}" + "".join(
            f"{quarter:>10.0f}" for quarter in quarters
        ) + f"{total:>11.0f}"
        print(row)
    print()
    print("activity over the day (cost per 25-unit bucket):")
    from repro.metrics.render import cost_sparklines
    print(cost_sparklines(
        sim.metrics, sim.cost_model, bucket=25.0,
        scopes=["uplink", "labdoor", "staff", "announce", "notes",
                "mobility"],
    ))
    print()
    print(f"grand total cost   : {sim.cost():.0f}   "
          f"battery: {sim.metrics.energy()} wireless ops")


if __name__ == "__main__":
    main()
