"""A2 -- prices Section 4.3's serialized LV(G) updates: ``(|LV|+3) C_f``.

Section 4.3: "Since LV(G) may be updated due to concurrent significant
moves, it becomes necessary to serialise changes to LV(G) so that all
copies of LV(G) are updated in the same sequence ... Since the static
network guarantees fifo message delivery, copies of LV(G) at different
MSSs will receive updates in the same sequence."

This ablation fires bursts of *concurrent* significant moves (several
members leave for fresh cells at once, including the combined
add+delete case) and verifies that

* every surviving view copy converges to the coordinator's copy;
* the converged view matches the ground truth (the set of cells that
  actually host members);
* the view stays correct across repeated rounds, under randomized
  fixed-network latencies (arbitrary latency, FIFO preserved).
"""

from __future__ import annotations

import random

from repro import NetworkConfig, Simulation, UniformLatency
from repro.groups import LocationViewGroup

from conftest import COSTS, print_table


def run_concurrent_moves(rounds: int, seed: int):
    sim = Simulation(
        n_mss=16, n_mh=6, seed=seed, cost_model=COSTS,
        config=NetworkConfig(fixed_latency=UniformLatency(0.2, 5.0)),
        placement=[i % 2 for i in range(6)],
    )
    group = LocationViewGroup(sim.network, sim.mh_ids)
    rng = random.Random(seed + 1)
    for _ in range(rounds):
        movers = rng.sample(range(6), 3)
        for mover in movers:  # fired at the same instant: concurrent
            target = rng.randrange(16)
            mh = sim.mh(mover)
            if mh.is_connected and mh.current_mss_id != f"mss-{target}":
                mh.move_to(f"mss-{target}")
        sim.drain()
    ground_truth = {
        sim.mh(i).current_mss_id for i in range(6)
    }
    coordinator_view = group.coordinator_view()
    copies_converged = all(
        group.view_copies[mss_id] == coordinator_view
        for mss_id in coordinator_view
    )
    return {
        "ground_truth": ground_truth,
        "view": coordinator_view,
        "copies_converged": copies_converged,
        "significant_moves": group.stats.significant_moves,
    }


def test_a2_concurrent_significant_moves_serialize(benchmark):
    seeds = (3, 7, 11)
    results = {s: run_concurrent_moves(6, s) for s in seeds[:-1]}
    results[seeds[-1]] = benchmark(run_concurrent_moves, 6, seeds[-1])

    rows = [
        (s, len(results[s]["view"]),
         results[s]["significant_moves"],
         results[s]["view"] == results[s]["ground_truth"],
         results[s]["copies_converged"])
        for s in seeds
    ]
    print_table(
        "A2: view convergence after bursts of concurrent moves",
        ["seed", "|LV|", "sig.moves", "matches truth", "converged"],
        rows,
    )
    for s in seeds:
        r = results[s]
        assert r["significant_moves"] > 0
        assert r["view"] == r["ground_truth"]
        assert r["copies_converged"]
