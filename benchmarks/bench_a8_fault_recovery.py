"""A8 -- prices dropping Section 2's reliable-network postulates.

Section 2 of the paper *postulates* a reliable, sequenced fixed network
and always-on support stations, so none of its cost formulas price
failure recovery.  This experiment removes both assumptions with a
fault plan (10% fixed-network loss, plus one mid-run MSS crash) and
measures what recovering the guarantees costs in the paper's own
currency: the reliable channel's acks and retransmissions (C_fixed),
the reconnect traffic of MHs orphaned by the crash (C_wireless +
C_fixed + C_search), and the token-regeneration election (C_fixed).

The qualitative claim: the R2' workload still serves every request with
mutual exclusion intact, and the entire recovery bill shows up as
ordinary priced traffic -- fault tolerance is bought, not free.
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    FaultPlan,
    LinkFault,
    MssCrash,
    NetworkConfig,
    R2Mutex,
    R2Variant,
    Simulation,
)
from repro.net import ConstantLatency

from conftest import COSTS, print_table

N_MSS = 4
N_MH = 8

LOSS_PLAN = FaultPlan(link_faults=(LinkFault(drop=0.1),), seed=3)
CRASH_PLAN = FaultPlan(
    link_faults=(LinkFault(drop=0.1),),
    crashes=(MssCrash("mss-2", at=30.0, recover_at=80.0),),
    seed=3,
)


def run_workload(plan, seed=3):
    """The same staggered single-request R2' workload under one plan."""
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    sim = Simulation(
        n_mss=N_MSS,
        n_mh=N_MH,
        seed=seed,
        cost_model=COSTS,
        config=config,
        fault_plan=plan,
    )
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        variant=R2Variant.COUNTER,
        max_traversals=200,
        token_timeout=30.0,
    )
    for i in range(N_MH):
        sim.scheduler.schedule(1.0 + 2.0 * i, mutex.request, f"mh-{i}")
    mutex.start()
    sim.drain()
    resource.assert_no_overlap()
    snap = sim.metrics.snapshot()
    recovery = (
        sum(snap.recovery_times) / len(snap.recovery_times)
        if snap.recovery_times
        else 0.0
    )
    return {
        "served": len({mh_id for (_, mh_id) in mutex.completed}),
        "cost": snap.cost(COSTS),
        "algo_cost": snap.cost(COSTS, "R2"),
        "retransmits": snap.fault_total("rel.retransmit"),
        "dropped": snap.fault_total("fixed.dropped"),
        "regenerations": mutex.regenerations,
        "recovery_time": recovery,
    }


def test_a8_recovery_cost(benchmark):
    baseline = run_workload(None)
    lossy = run_workload(LOSS_PLAN)
    crashed = benchmark(run_workload, CRASH_PLAN)

    rows = [
        ("reliable net", baseline["cost"], baseline["retransmits"],
         baseline["regenerations"], baseline["recovery_time"],
         baseline["served"]),
        ("10% loss", lossy["cost"], lossy["retransmits"],
         lossy["regenerations"], lossy["recovery_time"],
         lossy["served"]),
        ("loss + crash", crashed["cost"], crashed["retransmits"],
         crashed["regenerations"], crashed["recovery_time"],
         crashed["served"]),
    ]
    print_table(
        f"A8: R2' recovery bill, M={N_MSS} N={N_MH}",
        ["scenario", "cost", "retx", "regens", "t_recover", "served"],
        rows,
    )

    # Liveness survives every scenario: all requests served.
    for result in (baseline, lossy, crashed):
        assert result["served"] == N_MH
    # The fault-free run pays nothing for recovery machinery...
    assert baseline["retransmits"] == 0
    assert baseline["regenerations"] == 0
    assert baseline["dropped"] == 0
    # ...while lossy runs pay for acks, retransmissions and (with the
    # crash) the orphan-rejoin protocol -- all priced as real traffic.
    for result in (lossy, crashed):
        assert result["dropped"] > 0
        assert result["retransmits"] > 0
        assert result["cost"] > baseline["cost"]
    assert crashed["recovery_time"] > 0
