"""Shared helpers for the benchmark/experiment harness.

Every file in this directory reproduces one experiment row from
DESIGN.md: it runs the simulator, prints the measured-vs-predicted
table the paper's evaluation implies (visible with ``pytest -s``), and
asserts the paper's qualitative claim (who wins, and by what shape).
Timing is provided by pytest-benchmark; correctness does not depend on
it.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro import CostModel, NetworkConfig, Simulation
from repro.net import ConstantLatency

COSTS = CostModel(c_fixed=1.0, c_wireless=5.0, c_search=10.0)


def make_sim(
    n_mss: int,
    n_mh: int,
    seed: int = 1,
    placement="round_robin",
    search: str = "abstract",
    fixed_latency: float = 1.0,
    wireless_latency: float = 0.5,
    **config_kwargs,
) -> Simulation:
    """A deterministic simulation with the benchmark cost model."""
    config = NetworkConfig(
        fixed_latency=ConstantLatency(fixed_latency),
        wireless_latency=ConstantLatency(wireless_latency),
        **config_kwargs,
    )
    return Simulation(
        n_mss=n_mss,
        n_mh=n_mh,
        seed=seed,
        cost_model=COSTS,
        config=config,
        search=search,
        placement=placement,
    )


def print_table(
    title: str, headers: Iterable[str], rows: Iterable[Iterable]
) -> None:
    """Print one experiment's measured-vs-predicted table."""
    headers = list(headers)
    rows = [list(row) for row in rows]

    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = []
    for index, header in enumerate(headers):
        cells = [row[index] for row in rendered if index < len(row)]
        widths.append(max([len(header)] + [len(c) for c in cells]) + 2)
    print()
    print(f"== {title} ==")
    print("".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rendered:
        print("".join(c.rjust(w) for c, w in zip(row, widths)))


def relative_error(measured: float, predicted: float) -> float:
    """|measured - predicted| / predicted (0 when both are zero)."""
    if predicted == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - predicted) / predicted
