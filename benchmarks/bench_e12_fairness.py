"""E12 -- Section 3.1.2 "Variations": fairness of R2, R2' and R2''.

Paper claims reproduced:
* plain R2 lets a MH that moves ahead of the token be served at every
  MSS it visits -- up to once per MSS per traversal;
* R2' (token_val / access_count) limits an honest MH to one access per
  traversal, restoring fairness at identical circulation cost;
* a malicious MH that under-reports its access_count defeats R2' but
  not R2'' (the token_list variant): after being served at MSS m, a
  subsequent request is honoured only after the token visits every MSS
  in the ring;
* L2 grants strictly in init-timestamp order.
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    L2Mutex,
    R2Mutex,
    R2Variant,
)

from conftest import make_sim, print_table

CHASE_TIMING = dict(
    transit_time=0.1,
    search_delay=0.1,
    search_retry_delay=0.1,
    fixed_latency=10.0,
    wireless_latency=0.05,
)


def run_chase(variant: R2Variant, malicious: bool, traversals: int = 2):
    """mh-0 chases the token: after each access it moves to the next
    MSS in the ring and requests again before the token arrives."""
    sim = make_sim(n_mss=4, n_mh=4, **CHASE_TIMING)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, variant=variant,
                    max_traversals=traversals)
    if malicious:
        mutex.malicious_mhs.add("mh-0")
    mutex.request("mh-0")
    sim.drain()
    state = {"hops": 0}

    def on_complete(mh_id):
        state["hops"] += 1
        if state["hops"] < 4:
            next_mss = f"mss-{state['hops'] % 4}"
            sim.mh(0).move_to(next_mss)
            sim.scheduler.schedule(0.5, lambda: mutex.request("mh-0"))

    mutex.on_complete = on_complete
    mutex.start()
    sim.drain()
    per_traversal = {}
    for record in resource.accesses:
        token_val = record.info["token_val"]
        per_traversal[token_val] = per_traversal.get(token_val, 0) + 1
    return {
        "total_accesses": resource.access_count,
        "max_per_traversal": max(per_traversal.values(), default=0),
    }


def test_e12_fairness_of_ring_variants(benchmark):
    scenarios = [
        ("R2 plain, honest", R2Variant.PLAIN, False),
        ("R2' counter, honest", R2Variant.COUNTER, False),
        ("R2' counter, malicious", R2Variant.COUNTER, True),
        ("R2'' token-list, malicious", R2Variant.TOKEN_LIST, True),
    ]
    results = {}
    for label, variant, malicious in scenarios[:-1]:
        results[label] = run_chase(variant, malicious)
    label, variant, malicious = scenarios[-1]
    results[label] = benchmark(run_chase, variant, malicious)

    rows = [
        (label, results[label]["total_accesses"],
         results[label]["max_per_traversal"])
        for label, _, _ in scenarios
    ]
    print_table(
        "E12: accesses by a token-chasing MH (2 traversals)",
        ["scenario", "accesses", "max/traversal"],
        rows,
    )
    # Plain R2: multiple accesses within one traversal.
    assert results["R2 plain, honest"]["max_per_traversal"] > 1
    # R2' restores at-most-once per traversal for honest MHs.
    assert results["R2' counter, honest"]["max_per_traversal"] == 1
    # A lying MH breaks R2'...
    assert results["R2' counter, malicious"]["max_per_traversal"] > 1
    # ...but not R2''.
    assert results["R2'' token-list, malicious"]["max_per_traversal"] == 1


def test_e12_l2_grants_in_timestamp_order(benchmark):
    def run():
        sim = make_sim(n_mss=5, n_mh=10)
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource, cs_duration=0.2)
        for mh_id in sim.mh_ids:
            mutex.request(mh_id)
        sim.drain()
        return [ts for (ts, _) in mutex.grant_log], resource

    granted_ts, resource = benchmark(run)
    print_table(
        "E12b: L2 grant order vs request timestamps",
        ["grants", "in ts order"],
        [(len(granted_ts), granted_ts == sorted(granted_ts))],
    )
    assert len(granted_ts) == 10
    assert granted_ts == sorted(granted_ts)
    resource.assert_no_overlap()
