"""A6 -- prices L1's per-MH-pair FIFO burden from Section 3.1.1.

Section 3.1.1, on L1: "Correctness of the algorithm requires that
messages are delivered in sequence (fifo) at a destination.  Since in
L1 the source and destination of every message is a MH, this
requirement places an additional burden on the underlying network
protocols to maintain a logical fifo channel between any pair of MHs,
regardless of their location in the network."

Our substrate guarantees FIFO only *within* a residence (per-channel
sequencing) -- it deliberately does not build logical end-to-end FIFO
channels across moves, because the paper's two-tier algorithms never
need them.  This ablation makes the burden concrete:

* a message burst to a stationary MH arrives in order;
* the same burst to a MH that moves mid-stream arrives scrambled
  (searches and retries race);
* L2 is immune by construction: each of its three wireless messages is
  a one-shot delivery whose ordering with other executions is enforced
  by the MSS tier, so heavy mobility never hurts safety or liveness;
* L1 run under the same mobility loses liveness (requests stall when a
  release overtakes its request), demonstrating why executing Lamport
  directly on MHs needs the expensive logical-FIFO substrate.
"""

from __future__ import annotations

import random

from repro import CriticalResource, L1Mutex, L2Mutex
from repro.mobility import UniformMobility
from repro.net.messages import Message
from repro.workload import MutexWorkload

from conftest import make_sim, print_table


def run_burst(moves: bool):
    sim = make_sim(n_mss=4, n_mh=1)
    got = []
    sim.mh(0).register_handler(
        "a6.m", lambda message: got.append(message.payload)
    )
    for i in range(10):
        sim.scheduler.schedule(
            i * 0.3,
            lambda i=i: sim.network.send_to_mh(
                "mss-1",
                "mh-0",
                Message(kind="a6.m", src="mss-1", dst="mh-0",
                        payload=i, scope="a6"),
            ),
        )
    if moves:
        sim.scheduler.schedule(1.0, lambda: sim.mh(0).move_to("mss-2"))
        sim.scheduler.schedule(4.0, lambda: sim.mh(0).move_to("mss-3"))
    sim.drain()
    inversions = sum(
        1
        for i in range(len(got))
        for j in range(i + 1, len(got))
        if got[i] > got[j]
    )
    return {"received": len(got), "inversions": inversions}


def run_mutex_under_mobility(algorithm: str, move_rate: float,
                             seed: int = 11):
    sim = make_sim(n_mss=6, n_mh=6, seed=seed)
    resource = CriticalResource(sim.scheduler, raise_on_violation=False)
    if algorithm == "L1":
        mutex = L1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=0.3)
    else:
        mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.04,
                             rng=random.Random(seed + 1))
    mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                               rng=random.Random(seed + 2))
    sim.run(until=250.0)
    workload.stop()
    mobility.stop()
    sim.run(until=2000.0)
    return {
        "issued": workload.issued,
        "completed": workload.completed,
        "violations": resource.violations,
    }


def test_a6_reordering_across_moves(benchmark):
    stationary = run_burst(moves=False)
    moving = benchmark(run_burst, True)
    print_table(
        "A6: delivery order of a 10-message burst to one MH",
        ["destination", "received", "pair inversions"],
        [
            ("stationary", stationary["received"],
             stationary["inversions"]),
            ("moves twice mid-burst", moving["received"],
             moving["inversions"]),
        ],
    )
    assert stationary["received"] == 10
    assert stationary["inversions"] == 0
    assert moving["received"] == 10
    # The burden is real: crossing cells scrambles the stream.
    assert moving["inversions"] > 0


def test_a6_l1_loses_liveness_l2_does_not(benchmark):
    move_rate = 0.1
    l1 = run_mutex_under_mobility("L1", move_rate)
    l2 = benchmark(run_mutex_under_mobility, "L2", move_rate)
    print_table(
        f"A6b: Lamport under heavy mobility (move rate {move_rate}/MH)",
        ["algorithm", "issued", "completed", "safety violations"],
        [
            ("L1 (needs FIFO MH channels)", l1["issued"],
             l1["completed"], l1["violations"]),
            ("L2 (MSS-tier ordering)", l2["issued"], l2["completed"],
             l2["violations"]),
        ],
    )
    # L2: every request completes, safety intact.
    assert l2["completed"] == l2["issued"]
    assert l2["violations"] == 0
    # L1 without a logical-FIFO substrate degrades: requests stall.
    assert l1["completed"] < l1["issued"]
