"""E9 -- Section 4.3: the location-view strategy.

Paper claims reproduced:
* a group message costs ``(|LV|-1)*C_fixed + |G|*C_wireless`` -- the
  static-network traffic is proportional to |LV|, not |G|;
* an LV update after a significant move costs at most
  ``(|LV|+3)*C_fixed``;
* the total cost over a run respects the paper's closed-form bound,
  and the effective per-message cost depends only on the *significant*
  fraction of the mobility-to-message ratio: insignificant moves
  (within the view) barely cost anything.
"""

from __future__ import annotations

from repro import Category
from repro.analysis import formulas
from repro.groups import LocationViewGroup

from conftest import COSTS, make_sim, print_table


def run_clustered_message(g: int, clusters: int):
    """All members packed into ``clusters`` cells; send one message."""
    sim = make_sim(
        n_mss=clusters + 4, n_mh=g,
        placement=[i % clusters for i in range(g)],
    )
    group = LocationViewGroup(sim.network, sim.mh_ids)
    before = sim.metrics.snapshot()
    group.send("mh-0", "x")
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "lv": group.view_size(),
        "cost": delta.cost(COSTS, group.scope),
        "fixed": delta.total(Category.FIXED, group.scope),
        "wireless": delta.total(Category.WIRELESS, group.scope),
        "delivered": group.stats.deliveries,
    }


def run_mobility_regime(g: int, significant: bool, moves: int,
                        messages: int):
    """Members in 3 home cells; moves either stay inside the view
    (insignificant) or bounce to fresh cells (significant)."""
    sim = make_sim(
        n_mss=3 + moves + 2, n_mh=g,
        placement=[i % 3 for i in range(g)],
    )
    group = LocationViewGroup(sim.network, sim.mh_ids)
    fresh_cell = 3
    before = sim.metrics.snapshot()
    done = 0
    for round_index in range(messages):
        for _ in range(moves // messages):
            mover = done % g
            mh = sim.mh(mover)
            if significant:
                target = f"mss-{fresh_cell}"
                fresh_cell += 1
            else:
                current = int(mh.current_mss_id.split("-")[1])
                target = f"mss-{(current + 1) % 3}"
            mh.move_to(target)
            sim.drain()
            done += 1
        group.send(sim.mh_id(g - 1), ("msg", round_index))
        sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, group.scope),
        "mob": group.stats.moves,
        "msg": group.stats.messages,
        "f": group.stats.significant_fraction,
        "lv_max": group.max_view_size,
        "missed": group.stats.missed,
    }


def test_e9_message_cost_proportional_to_view(benchmark):
    g = 6
    cluster_counts = (1, 2, 6)
    results = {c: run_clustered_message(g, c) for c in cluster_counts[:-1]}
    results[cluster_counts[-1]] = benchmark(
        run_clustered_message, g, cluster_counts[-1]
    )
    rows = []
    for c in cluster_counts:
        r = results[c]
        predicted = formulas.location_view_message_cost(r["lv"], g, COSTS)
        rows.append((r["lv"], r["cost"], predicted, r["fixed"],
                     r["wireless"]))
    print_table(
        f"E9: LV group-message cost vs |LV|, |G|={g}",
        ["|LV|", "measured", "predicted", "fixed msgs", "wireless"],
        rows,
    )
    for c in cluster_counts:
        r = results[c]
        assert r["lv"] == c
        assert r["cost"] == formulas.location_view_message_cost(
            c, g, COSTS
        )
        # Static traffic proportional to |LV|-1, NOT to |G|-1.
        assert r["fixed"] == c - 1
        assert r["wireless"] == g
        assert r["delivered"] == g - 1


def test_e9_total_cost_within_paper_bound(benchmark):
    g, moves, messages = 6, 8, 4
    result = benchmark(run_mobility_regime, g, True, moves, messages)
    bound = formulas.location_view_total_cost_bound(
        result["lv_max"], g, result["f"], result["mob"],
        result["msg"], COSTS,
    )
    print_table(
        "E9b: LV total cost vs closed-form bound (significant moves)",
        ["MOB", "MSG", "f", "|LV|max", "measured", "bound"],
        [(result["mob"], result["msg"], result["f"],
          result["lv_max"], result["cost"], bound)],
    )
    assert result["f"] == 1.0
    assert result["cost"] <= bound


def test_e9_only_significant_fraction_matters(benchmark):
    g, moves, messages = 6, 8, 4
    insig = run_mobility_regime(g, False, moves, messages)
    sig = benchmark(run_mobility_regime, g, True, moves, messages)
    rows = [
        ("insignificant", insig["mob"], insig["f"],
         insig["cost"] / insig["msg"]),
        ("significant", sig["mob"], sig["f"],
         sig["cost"] / sig["msg"]),
    ]
    print_table(
        "E9c: effective cost/message, same MOB/MSG, different f",
        ["regime", "MOB", "f", "measured/msg"],
        rows,
    )
    assert insig["f"] == 0.0
    assert sig["f"] == 1.0
    # Same mobility volume, but only the significant regime pays for
    # view maintenance.
    assert insig["cost"] < sig["cost"]
    # Insignificant moves cost exactly one move-notice each beyond the
    # pure messaging cost.
    base = messages * formulas.location_view_message_cost(3, g, COSTS)
    assert insig["cost"] == base + moves * COSTS.c_fixed
