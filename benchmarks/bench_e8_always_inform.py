"""E8 -- Section 4.2: the always-inform strategy.

Paper claims reproduced:
* a group message (and equally a location update) costs
  ``(|G|-1)*(2*C_wireless + C_fixed)``;
* the total over a run is ``(MOB + MSG)*(|G|-1)*(2*C_w + C_f)``, so the
  effective per-message cost is ``(MOB/MSG + 1)`` times the base cost:
  the mobility-to-message ratio governs the scheme;
* after updates settle, deliveries never search.
"""

from __future__ import annotations

from repro import Category
from repro.analysis import formulas
from repro.groups import AlwaysInformGroup

from conftest import COSTS, make_sim, print_table


def run_always_inform(g: int, moves: int, messages: int):
    # Two private cells per member (cells 2i and 2i+1): members toggle
    # between their own pair, so no two members ever share a cell and
    # every copy crosses the fixed network -- the formula's accounting.
    sim = make_sim(
        n_mss=2 * g, n_mh=g, placement=[2 * i for i in range(g)]
    )
    group = AlwaysInformGroup(sim.network, sim.mh_ids)
    toggles = [0] * g
    before = sim.metrics.snapshot()
    done_moves = 0
    for round_index in range(messages):
        per_round = moves // messages + (
            1 if round_index < moves % messages else 0
        )
        for _ in range(per_round):
            mover = done_moves % g
            toggles[mover] ^= 1
            sim.mh(mover).move_to(f"mss-{2 * mover + toggles[mover]}")
            sim.drain()
            done_moves += 1
        group.send("mh-0", ("msg", round_index))
        sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, group.scope),
        "searches": delta.total(Category.SEARCH, group.scope),
        "mob": group.stats.moves,
        "msg": group.stats.messages,
        "deliveries": group.stats.deliveries,
        "stale": group.stale_deliveries,
    }


def test_e8_always_inform_effective_cost(benchmark):
    g = 5
    messages = 4
    ratios = (0, 1, 3)
    results = {}
    for ratio in ratios[:-1]:
        results[ratio] = run_always_inform(g, ratio * messages, messages)
    results[ratios[-1]] = benchmark(
        run_always_inform, g, ratios[-1] * messages, messages
    )

    rows = []
    for ratio in ratios:
        r = results[ratio]
        measured_eff = r["cost"] / r["msg"]
        predicted_eff = formulas.always_inform_effective_cost(
            g, r["mob"] / r["msg"], COSTS
        )
        rows.append((
            r["mob"], r["msg"], measured_eff, predicted_eff,
            r["searches"],
        ))
    print_table(
        f"E8: always-inform effective cost per message, |G|={g}",
        ["MOB", "MSG", "measured/msg", "predicted/msg", "searches"],
        rows,
    )
    for ratio in ratios:
        r = results[ratio]
        assert r["mob"] == ratio * messages
        assert r["cost"] == formulas.always_inform_total_cost(
            g, r["mob"], r["msg"], COSTS
        )
        assert r["searches"] == 0
        assert r["stale"] == 0
        assert r["deliveries"] == r["msg"] * (g - 1)
    # The effective cost grows linearly in MOB/MSG.
    eff = [results[r]["cost"] / results[r]["msg"] for r in ratios]
    base = formulas.always_inform_message_cost(g, COSTS)
    assert eff[0] == base
    assert eff[1] == 2 * base
    assert eff[2] == 4 * base
