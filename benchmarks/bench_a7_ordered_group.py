"""A7 -- prices Section 4's view-routed fan-out: ``(|LV|-1)`` vs ``(M-1)``.

Section 4 separates group *communication* semantics from group
*location*; this experiment composes the two reproduction pieces --
total order from the sequencer design of reference [1], fan-out from
the paper's location view -- and measures the payoff:

* the all-MSS flooding multicast pays ``(M-1) C_f`` static messages
  per send regardless of where the group lives;
* the view-routed ordered group pays ``(|LV|-1) C_f``, so for a
  clustered group its static traffic is a fraction ``|LV|/M`` of the
  flooding cost, while both deliver exactly-once in total order.
"""

from __future__ import annotations

from repro import Category
from repro.groups import OrderedGroup
from repro.multicast import ExactlyOnceMulticast

from conftest import COSTS, make_sim, print_table


def run_flooding(m: int, g: int, clusters: int, messages: int):
    sim = make_sim(n_mss=m, n_mh=g,
                   placement=[i % clusters for i in range(g)])
    feed = ExactlyOnceMulticast(sim.network, sim.mh_ids, gc=False)
    before = sim.metrics.snapshot()
    for i in range(messages):
        feed.send(sim.mh_id(i % g), ("m", i))
        sim.drain()
    delta = sim.metrics.since(before)
    ok = all(
        feed.delivered_seqs(member) == list(range(1, messages + 1))
        for member in sim.mh_ids
    )
    return {
        "fixed_per_msg": delta.total(Category.FIXED, "eom") / messages,
        "cost_per_msg": delta.cost(COSTS, "eom") / messages,
        "ordered_exactly_once": ok,
    }


def run_view_routed(m: int, g: int, clusters: int, messages: int):
    sim = make_sim(n_mss=m, n_mh=g,
                   placement=[i % clusters for i in range(g)])
    group = OrderedGroup(sim.network, sim.mh_ids)
    before = sim.metrics.snapshot()
    for i in range(messages):
        group.send(sim.mh_id(i % g), ("m", i))
        sim.drain()
    delta = sim.metrics.since(before)
    ok = all(
        group.delivered_seqs(member) == list(range(1, messages + 1))
        for member in sim.mh_ids
    )
    return {
        "fixed_per_msg": delta.total(
            Category.FIXED, group.scope
        ) / messages,
        "cost_per_msg": delta.cost(COSTS, group.scope) / messages,
        "ordered_exactly_once": ok,
        "lv": group.view.view_size(),
    }


def test_a7_view_routing_beats_flooding_for_clustered_groups(benchmark):
    m, g, messages = 12, 6, 5
    rows = []
    results = {}
    for clusters in (1, 2, 6):
        flood = run_flooding(m, g, clusters, messages)
        if clusters == 6:
            routed = benchmark(run_view_routed, m, g, clusters, messages)
        else:
            routed = run_view_routed(m, g, clusters, messages)
        results[clusters] = (flood, routed)
        rows.append((
            clusters, routed["lv"],
            flood["fixed_per_msg"], routed["fixed_per_msg"],
            flood["cost_per_msg"], routed["cost_per_msg"],
        ))
    print_table(
        f"A7: ordered delivery, flooding vs view-routed (M={m}, |G|={g})",
        ["clusters", "|LV|", "flood fixed/msg", "LV fixed/msg",
         "flood cost/msg", "LV cost/msg"],
        rows,
    )
    for clusters, (flood, routed) in results.items():
        assert flood["ordered_exactly_once"]
        assert routed["ordered_exactly_once"]
        assert routed["lv"] == clusters
        # Flooding always pays M-1 static messages (plus submit relays);
        # view routing pays |LV|-1 (plus at most one sequencer hop).
        assert flood["fixed_per_msg"] >= m - 1
        assert routed["fixed_per_msg"] <= clusters + 1
        # For any clustering short of fully spread, view routing is
        # cheaper overall.
        if clusters < 6:
            assert routed["cost_per_msg"] < flood["cost_per_msg"]
