"""E3 -- Section 3.1.1 "Comparison of algorithms L1 and L2".

Paper claims reproduced:
* L1's search overhead is proportional to N while L2's is constant;
* since C_search > C_fixed and N >= M, L2's total cost is lower, at
  every N in the sweep;
* L2 uses a constant number (3) of wireless messages while L1 uses
  ``6*(N-1)`` wireless transmissions/receptions;
* L2 keeps the request queues off the MHs (bystander energy is zero).
"""

from __future__ import annotations

from repro import Category, CriticalResource, L1Mutex, L2Mutex
from repro.analysis import comparisons

from conftest import COSTS, make_sim, print_table


def run_pair(n: int, m: int):
    # One cell per MH for the L1 run: the formula's accounting charges
    # a search on every message, which holds when no two participants
    # share a cell.
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    l1 = L1Mutex(sim.network, sim.mh_ids, resource)
    before = sim.metrics.snapshot()
    l1.request("mh-0")
    sim.drain()
    d1 = sim.metrics.since(before)

    sim2 = make_sim(n_mss=max(m, 2), n_mh=n)
    resource2 = CriticalResource(sim2.scheduler)
    l2 = L2Mutex(sim2.network, resource2)
    before2 = sim2.metrics.snapshot()
    l2.request("mh-0")
    sim2.mh(0).move_to(sim2.mss_id(1))
    sim2.drain()
    d2 = sim2.metrics.since(before2)
    return {
        "l1_cost": d1.cost(COSTS, "L1"),
        "l2_cost": d2.cost(COSTS, "L2"),
        "l1_searches": d1.total(Category.SEARCH, "L1"),
        "l2_searches": d2.total(Category.SEARCH, "L2"),
        "l1_wireless": d1.total(Category.WIRELESS, "L1"),
        "l2_wireless": d2.total(Category.WIRELESS, "L2"),
        "l1_bystander_energy": sum(
            d1.energy(f"mh-{i}") for i in range(1, n)
        ),
        "l2_bystander_energy": sum(
            d2.energy(f"mh-{i}") for i in range(1, n)
        ),
    }


def test_e3_l1_vs_l2_sweep(benchmark):
    m = 8
    sizes = (8, 16, 32)
    results = {n: run_pair(n, m) for n in sizes[:-1]}
    results[sizes[-1]] = benchmark(run_pair, sizes[-1], m)

    rows = []
    for n in sizes:
        r = results[n]
        predicted = comparisons.l1_vs_l2(n, m, COSTS)
        rows.append((
            n, r["l1_cost"], r["l2_cost"],
            r["l1_cost"] / r["l2_cost"], predicted.factor,
            r["l1_searches"], r["l2_searches"],
        ))
    print_table(
        f"E3: L1 vs L2, M={m} (cost per execution)",
        ["N", "L1", "L2", "factor", "pred.factor",
         "L1 srch", "L2 srch"],
        rows,
    )
    for n in sizes:
        r = results[n]
        # Who wins: L2, at every N.
        assert r["l2_cost"] < r["l1_cost"]
        # By roughly the predicted factor (exactly, here).
        predicted = comparisons.l1_vs_l2(n, m, COSTS)
        assert r["l1_cost"] / r["l2_cost"] == predicted.factor
        # Search: O(N) vs O(1).
        assert r["l1_searches"] == 3 * (n - 1)
        assert r["l2_searches"] == 1
        # Wireless: O(N) vs constant 3.
        assert r["l1_wireless"] == 6 * (n - 1)
        assert r["l2_wireless"] == 3
        # Battery at bystanders: L1 drains everyone, L2 nobody.
        assert r["l1_bystander_energy"] > 0
        assert r["l2_bystander_energy"] == 0
    # The gap widens with N.
    factors = [results[n]["l1_cost"] / results[n]["l2_cost"]
               for n in sizes]
    assert factors == sorted(factors)
