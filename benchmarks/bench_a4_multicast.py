"""A4 -- prices ref [1]'s search-free ``(M-1) C_f`` exactly-once multicast.

Measures the cost structure of the buffering + handoff multicast built
on the same substrate:

* a multicast costs a constant ``(M-1)`` flood on the static network
  plus one wireless delivery per member plus per-member acks -- no
  searches, ever (the structuring principle again: all location logic
  is absorbed by the static tier);
* buffers grow while a member is away and collapse after it catches
  up (the garbage-collection story of [1]);
* mobility changes *where* deliveries happen, not how many.
"""

from __future__ import annotations

from repro import Category
from repro.multicast import ExactlyOnceMulticast

from conftest import COSTS, make_sim, print_table


def run_multicast(m: int, g: int, messages: int, moves: int):
    sim = make_sim(n_mss=m, n_mh=g)
    multicast = ExactlyOnceMulticast(sim.network, sim.mh_ids)
    before = sim.metrics.snapshot()
    for i in range(messages):
        multicast.send(sim.mh_id(i % g), ("m", i))
        sim.drain()
        for j in range(moves // messages):
            mover = (i + j) % g
            target = (mover + i + j + 1) % m
            mh = sim.mh(mover)
            if mh.is_connected and mh.current_mss_id != f"mss-{target}":
                mh.move_to(f"mss-{target}")
        sim.drain()
    delta = sim.metrics.since(before)
    ok = all(
        multicast.delivered_seqs(member) == list(range(1, messages + 1))
        for member in sim.mh_ids
    )
    return {
        "cost_per_msg": delta.cost(COSTS, "eom") / messages,
        "wireless": delta.total(Category.WIRELESS, "eom"),
        "searches": delta.total(Category.SEARCH, "eom"),
        "exactly_once": ok,
        "buffers_empty": all(
            multicast.buffer_size(mss) == 0 for mss in sim.mss_ids
        ),
    }


def test_a4_multicast_cost_structure(benchmark):
    m, g, messages = 6, 4, 5
    static_run = run_multicast(m, g, messages, moves=0)
    mobile_run = benchmark(run_multicast, m, g, messages, 10)

    rows = [
        ("static members", static_run["cost_per_msg"],
         static_run["searches"], static_run["exactly_once"]),
        ("moving members", mobile_run["cost_per_msg"],
         mobile_run["searches"], mobile_run["exactly_once"]),
    ]
    print_table(
        f"A4: exactly-once multicast, M={m}, |G|={g}",
        ["regime", "cost/msg", "searches", "exactly once"],
        rows,
    )
    for result in (static_run, mobile_run):
        assert result["exactly_once"]
        assert result["buffers_empty"]
        # The structuring principle: zero searches in either regime.
        assert result["searches"] == 0
    # Static regime, per message: uplink (1 wireless) + submit relay
    # (<=1 fixed) + flood (M-1 fixed) + |G| wireless deliveries +
    # |G| acks (fixed, minus local ones).  Mobility can only add fixed
    # handoff-buffered redeliveries, never searches.
    assert static_run["wireless"] == messages * (1 + g)
    assert mobile_run["cost_per_msg"] <= static_run["cost_per_msg"] * 1.6
