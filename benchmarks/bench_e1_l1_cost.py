"""E1 -- Section 3.1.1: the cost structure of Algorithm L1.

Paper claims reproduced:
* one execution costs ``3*(N-1)*(2*C_wireless + C_search)``;
* energy is proportional to ``6*(N-1)`` overall, ``3*(N-1)`` at the
  initiator, and 3 at every other MH;
* the search overhead is proportional to N.
"""

from __future__ import annotations

from repro import Category, CriticalResource, L1Mutex
from repro.analysis import formulas

from conftest import COSTS, make_sim, print_table


def run_l1(n: int):
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource)
    mutex.request("mh-0")
    sim.drain()
    snap = sim.metrics.snapshot()
    return {
        "n": n,
        "cost": snap.cost(COSTS, "L1"),
        "searches": snap.total(Category.SEARCH, "L1"),
        "energy": snap.energy(),
        "energy_initiator": snap.energy("mh-0"),
        "accesses": resource.access_count,
    }


def test_e1_l1_execution_cost(benchmark):
    sizes = (4, 8, 16)
    results = {n: run_l1(n) for n in sizes[:-1]}
    results[sizes[-1]] = benchmark(run_l1, sizes[-1])

    rows = []
    for n in sizes:
        r = results[n]
        predicted = formulas.l1_execution_cost(n, COSTS)
        rows.append((
            n, r["cost"], predicted, r["searches"],
            formulas.l1_search_count(n), r["energy"],
            formulas.l1_energy_total(n),
        ))
    print_table(
        "E1: L1 cost per execution vs N",
        ["N", "measured", "predicted", "searches", "pred.",
         "energy", "pred."],
        rows,
    )
    for n in sizes:
        r = results[n]
        assert r["accesses"] == 1
        assert r["cost"] == formulas.l1_execution_cost(n, COSTS)
        assert r["searches"] == formulas.l1_search_count(n)
        assert r["energy"] == formulas.l1_energy_total(n)
        assert r["energy_initiator"] == formulas.l1_energy_initiator(n)
    # Search overhead proportional to N: perfectly linear increments.
    assert results[16]["searches"] - results[8]["searches"] == 3 * 8
    assert results[8]["searches"] - results[4]["searches"] == 3 * 4
