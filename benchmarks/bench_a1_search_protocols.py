"""A1 -- prices Section 2's abstract search: ``C_search >= C_fixed``.

The paper prices "locate a MH and forward a message to its current
MSS" as a scalar ``C_search >= C_fixed`` and notes the worst case
contacts each of the other M-1 MSSs.  This ablation runs the same
delivery under three search protocols:

* the abstract scalar (the paper's accounting);
* a measured broadcast search -- M-1 parallel queries + 1 reply + 1
  forward, all priced at ``C_fixed`` -- whose empirical cost brackets
  the paper's worst case and grows linearly in M;
* a measured home-agent search (mobile-IP style, the paper's refs
  [6]/[10]) -- constant 3 messages per search plus per-move maintenance
  traffic: the single-destination version of Section 4's search/inform
  trade-off.
"""

from __future__ import annotations

from repro import Category
from repro.net.messages import Message

from conftest import COSTS, make_sim, print_table


def run_delivery(search: str, m: int, deliveries: int = 4,
                 moves: int = 4):
    sim = make_sim(n_mss=m, n_mh=2, search=search,
                   placement=[0, 1])
    sim.mh(1).register_handler("a1.msg", lambda msg: None)
    received = [0]
    before = sim.metrics.snapshot()
    for i in range(moves):
        sim.mh(1).move_to(f"mss-{(i + 2) % m}")
        sim.drain()
    for i in range(deliveries):
        sim.network.send_to_mh(
            "mss-0", "mh-1",
            Message(kind="a1.msg", src="mss-0", dst="mh-1",
                    payload=i, scope="a1"),
            on_delivered=lambda msg: received.__setitem__(
                0, received[0] + 1
            ),
        )
        sim.drain()
    delta = sim.metrics.since(before)
    search_cost = (
        delta.total(Category.SEARCH, "a1") * COSTS.c_search
        + delta.total(Category.SEARCH_PROBE, "a1") * COSTS.c_fixed
    )
    maintenance = delta.total(Category.FIXED, "search-maintenance")
    return {
        "received": received[0],
        "search_cost_per_delivery": search_cost / deliveries,
        "probes": delta.total(Category.SEARCH_PROBE, "a1"),
        "maintenance_msgs": maintenance,
    }


def test_a1_search_protocol_ablation(benchmark):
    m = 8
    abstract = run_delivery("abstract", m)
    broadcast = run_delivery("broadcast", m)
    home = benchmark(run_delivery, "home-agent", m)

    rows = [
        ("abstract C_search", abstract["search_cost_per_delivery"],
         0, 0),
        ("broadcast (measured)", broadcast["search_cost_per_delivery"],
         broadcast["probes"], 0),
        ("home-agent (measured)", home["search_cost_per_delivery"],
         home["probes"], home["maintenance_msgs"]),
    ]
    print_table(
        f"A1: search cost per remote delivery, M={m}",
        ["protocol", "cost/delivery", "probes", "maintenance"],
        rows,
    )
    for result in (abstract, broadcast, home):
        assert result["received"] == 4
    # The abstract charge is exactly C_search.
    assert abstract["search_cost_per_delivery"] == COSTS.c_search
    # Broadcast: (M-1) queries + 1 reply + 1 forward per delivery.
    assert broadcast["probes"] == 4 * ((m - 1) + 1 + 1)
    # Its empirical cost is within the paper's worst-case regime:
    # >= C_fixed and around (M-1)*C_fixed.
    assert broadcast["search_cost_per_delivery"] >= COSTS.c_fixed
    assert broadcast["search_cost_per_delivery"] == \
        (m + 1) * COSTS.c_fixed
    # Home agent: constant 3 messages per delivery, independent of M...
    assert home["search_cost_per_delivery"] == 3 * COSTS.c_fixed
    # ...but it pays maintenance on (almost) every move.
    assert home["maintenance_msgs"] >= 3


def test_a1_full_spectrum_of_protocols(benchmark):
    """The search/inform spectrum: from never-inform (broadcast,
    caching) through region-crossings-only (regional) to every-move
    (home agent)."""
    from repro.net.regional_search import RegionalSearch

    m = 8

    def run_named(protocol):
        from repro.net.messages import Message
        sim = make_sim(n_mss=m, n_mh=2, search=protocol,
                       placement=[0, 1])
        sim.mh(1).register_handler("a1.msg", lambda msg: None)
        before = sim.metrics.snapshot()
        for i in range(4):
            sim.mh(1).move_to(f"mss-{(i + 2) % m}")
            sim.drain()
        for i in range(4):
            sim.network.send_to_mh(
                "mss-0", "mh-1",
                Message(kind="a1.msg", src="mss-0", dst="mh-1",
                        payload=i, scope="a1"),
            )
            sim.drain()
        delta = sim.metrics.since(before)
        return {
            "search_cost": (
                delta.total(Category.SEARCH, "a1") * COSTS.c_search
                + delta.total(Category.SEARCH_PROBE, "a1")
                * COSTS.c_fixed
            ) / 4,
            "maintenance": delta.total(
                Category.FIXED, "search-maintenance"
            ),
        }

    results = {
        "broadcast": run_named("broadcast"),
        "caching": run_named("caching"),
        "regional(R=2)": run_named(RegionalSearch(region_size=2)),
        "home-agent": benchmark(run_named, "home-agent"),
    }
    rows = [
        (name, r["search_cost"], r["maintenance"])
        for name, r in results.items()
    ]
    print_table(
        f"A1c: the search/inform spectrum, M={m} "
        f"(4 moves then 4 deliveries)",
        ["protocol", "search cost/delivery", "maintenance msgs"],
        rows,
    )
    # Maintenance ordering: never <= region-crossings <= every move.
    assert results["broadcast"]["maintenance"] == 0
    assert results["caching"]["maintenance"] == 0
    assert 0 < results["regional(R=2)"]["maintenance"] <= \
        results["home-agent"]["maintenance"]
    # Search-cost ordering is the reverse.
    assert results["home-agent"]["search_cost"] <= \
        results["regional(R=2)"]["search_cost"]
    assert results["regional(R=2)"]["search_cost"] < \
        results["broadcast"]["search_cost"]


def test_a1_broadcast_scales_with_m_home_agent_does_not(benchmark):
    sizes = (4, 8, 16)
    broadcast = {m: run_delivery("broadcast", m) for m in sizes}
    home = {m: run_delivery("home-agent", m) for m in sizes[:-1]}
    home[sizes[-1]] = benchmark(run_delivery, "home-agent", sizes[-1])
    rows = [
        (m, broadcast[m]["search_cost_per_delivery"],
         home[m]["search_cost_per_delivery"])
        for m in sizes
    ]
    print_table(
        "A1b: search cost per delivery vs M",
        ["M", "broadcast", "home-agent"],
        rows,
    )
    costs_b = [broadcast[m]["search_cost_per_delivery"] for m in sizes]
    costs_h = [home[m]["search_cost_per_delivery"] for m in sizes]
    assert costs_b == sorted(costs_b) and costs_b[0] < costs_b[-1]
    assert len(set(costs_h)) == 1  # constant in M
