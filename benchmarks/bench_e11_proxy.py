"""E11 -- Section 5: the proxy framework's search/inform trade-off.

Paper claims reproduced:
* a fixed proxy association totally separates mobility from the
  algorithm: deliveries never search, but the proxy must be informed of
  every move ("high message traffic ... may be infeasible" for
  frequent movers);
* the local-proxy association (as in L2/R2) pays nothing on moves but a
  search per delivery;
* sweeping the move-to-message ratio crosses the two curves.
"""

from __future__ import annotations

import random

from repro import Category
from repro.mobility import UniformMobility
from repro.proxy import (
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxiedMessenger,
    ProxyManager,
)
from repro.sim import PoissonProcess

from conftest import COSTS, make_sim, print_table

N_MSS = 10
N_MH = 10
MSG_RATE = 0.05
DURATION = 1200.0


def run_policy(policy_name: str, move_rate: float, seed: int = 3):
    sim = make_sim(n_mss=N_MSS, n_mh=N_MH, seed=seed)
    policy = (
        FixedProxyPolicy() if policy_name == "fixed"
        else LocalProxyPolicy()
    )
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    messenger = ProxiedMessenger(manager)
    rng = random.Random(seed + 1)
    sent = [0]

    def send_one() -> None:
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            sent[0] += 1
            messenger.send(src, dst, ("letter", sent[0]))

    traffic = PoissonProcess(sim.scheduler, MSG_RATE, send_one,
                             rng=random.Random(seed + 2))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 3))
    sim.run(until=DURATION)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    moves = sum(sim.mh(i).moves_completed for i in range(N_MH))
    return {
        "eff": sim.metrics.cost(COSTS, "proxy") / max(sent[0], 1),
        "sent": sent[0],
        "delivered": len(messenger.delivered),
        "moves": moves,
        "searches": sim.metrics.total(Category.SEARCH, "proxy"),
        "informs": (
            policy.inform_messages
            if isinstance(policy, FixedProxyPolicy) else 0
        ),
    }


def test_e11_proxy_tradeoff(benchmark):
    move_rates = (0.002, 0.02, 0.2)
    results = {}
    for rate in move_rates:
        results[(rate, "fixed")] = run_policy("fixed", rate)
        if rate == move_rates[-1]:
            results[(rate, "local")] = benchmark(
                run_policy, "local", rate
            )
        else:
            results[(rate, "local")] = run_policy("local", rate)

    rows = []
    for rate in move_rates:
        fixed = results[(rate, "fixed")]
        local = results[(rate, "local")]
        rows.append((
            f"{rate:g}", fixed["moves"], fixed["eff"], local["eff"],
            "fixed" if fixed["eff"] < local["eff"] else "local",
        ))
    print_table(
        "E11: cost per letter, fixed vs local proxies",
        ["move rate", "moves", "fixed", "local", "winner"],
        rows,
    )
    for rate in move_rates:
        fixed = results[(rate, "fixed")]
        local = results[(rate, "local")]
        # Every letter was delivered under both policies.
        assert fixed["delivered"] == fixed["sent"]
        assert local["delivered"] == local["sent"]
        # Fixed proxies never search; inform traffic tracks moves.
        assert fixed["searches"] == 0
        assert fixed["informs"] > 0
        # Local proxies never inform; deliveries pay the searches.
        assert local["informs"] == 0
        assert local["searches"] > 0
    # The crossover: fixed wins at low mobility, local at high.
    low, high = move_rates[0], move_rates[-1]
    assert results[(low, "fixed")]["eff"] < \
        results[(low, "local")]["eff"]
    assert results[(high, "local")]["eff"] < \
        results[(high, "fixed")]["eff"]
