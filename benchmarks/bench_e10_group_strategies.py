"""E10 -- Section 4.3 "Comparison of three approaches".

The paper's culminating comparison, as a series over the
mobility-to-message ratio (the closest thing the paper has to a
figure):

* pure search is flat (mobility independent);
* always inform grows linearly with MOB/MSG and beats pure search only
  below the analytic crossover ratio;
* location view tracks only the significant fraction of moves and wins
  for clustered groups in every regime tested;
* static-network messages per group message are proportional to |G|
  for the first two strategies and to |LV| for the location view.
"""

from __future__ import annotations

import random

from repro import Category
from repro.analysis import comparisons
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)
from repro.mobility import LocalizedMobility
from repro.workload import GroupMessagingWorkload

from conftest import COSTS, make_sim, print_table

G = 6
N_MSS = 12
MESSAGES_TARGET = 30


def run_strategy(strategy_class, move_rate: float, seed: int = 3):
    sim = make_sim(
        n_mss=N_MSS, n_mh=G, seed=seed,
        placement=[i % 3 for i in range(G)],
    )
    group = strategy_class(sim.network, sim.mh_ids)
    workload = GroupMessagingWorkload(
        sim.network, group, message_rate=0.05, rng=random.Random(seed),
    )
    mobility = None
    if move_rate > 0:
        mobility = LocalizedMobility(
            sim.network, sim.mh_ids, move_rate,
            rng=random.Random(seed + 1),
            home_cells=["mss-0", "mss-1", "mss-2"],
            escape_probability=0.2,
        )
    sim.run(until=MESSAGES_TARGET / 0.05)
    workload.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    stats = group.stats
    cost = sim.metrics.cost(COSTS, group.scope)
    fixed = (
        sim.metrics.total(Category.FIXED, group.scope)
        + sim.metrics.total(Category.SEARCH_PROBE, group.scope)
    )
    return {
        "eff": cost / stats.messages,
        "ratio": stats.mobility_to_message_ratio,
        "f": stats.significant_fraction,
        "msg": stats.messages,
        "fixed_per_msg": fixed / stats.messages,
        "searches": sim.metrics.total(Category.SEARCH, group.scope),
    }


def test_e10_three_strategy_series(benchmark):
    strategies = {
        "pure_search": PureSearchGroup,
        "always_inform": AlwaysInformGroup,
        "location_view": LocationViewGroup,
    }
    move_rates = (0.0, 0.01, 0.05)
    results = {}
    for rate in move_rates:
        for name, cls in strategies.items():
            if rate == move_rates[-1] and name == "location_view":
                results[(rate, name)] = benchmark(
                    run_strategy, cls, rate
                )
            else:
                results[(rate, name)] = run_strategy(cls, rate)

    rows = []
    for rate in move_rates:
        row = [f"{rate:g}"]
        ratio = results[(rate, "pure_search")]["ratio"]
        row.append(ratio)
        for name in strategies:
            row.append(results[(rate, name)]["eff"])
        rows.append(tuple(row))
    print_table(
        f"E10: effective cost per group message vs mobility "
        f"(|G|={G}, localized)",
        ["move rate", "MOB/MSG", "pure srch", "always inf", "loc view"],
        rows,
    )

    threshold = comparisons.always_inform_vs_pure_search_ratio(COSTS)
    for rate in move_rates:
        ps = results[(rate, "pure_search")]
        ai = results[(rate, "always_inform")]
        lv = results[(rate, "location_view")]
        # Always-inform vs pure-search winner flips at the analytic
        # crossover ratio.
        if ai["ratio"] < threshold * 0.8:
            assert ai["eff"] < ps["eff"]
        elif ai["ratio"] > threshold * 1.2:
            assert ps["eff"] < ai["eff"]
        # The location view wins for this clustered group throughout.
        assert lv["eff"] < ps["eff"]
        assert lv["eff"] < ai["eff"]
        # Static traffic: |G|-proportional vs |LV|-proportional.
        assert lv["fixed_per_msg"] < ai["fixed_per_msg"]
    # Pure search is flat in mobility (identical per-message cost needs
    # identical cell overlap, so allow small drift).
    flat = [results[(r, "pure_search")]["eff"] for r in move_rates]
    assert max(flat) / min(flat) < 1.35
    # Always-inform grows with mobility.
    growing = [results[(r, "always_inform")]["eff"] for r in move_rates]
    assert growing[0] < growing[-1]
