"""E5 -- Section 3.1.2: the cost structure of Algorithm R2.

Paper claims reproduced:
* satisfying K requests in one traversal costs
  ``K*(3*C_wireless + C_fixed + C_search) + M*C_fixed``
  (nomadic requesters: each moved after requesting, so grants search
  and token returns cross the fixed network);
* the bound on K is ``N*M`` for plain R2 and ``N`` for R2';
* only requesters spend energy (3 units each).
"""

from __future__ import annotations

from repro import Category, CriticalResource, R2Mutex
from repro.analysis import formulas

from conftest import COSTS, make_sim, print_table


def run_r2(m: int, k: int):
    sim = make_sim(n_mss=m, n_mh=max(k, 1))
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=1)
    before = sim.metrics.snapshot()
    for i in range(k):
        mutex.request(f"mh-{i}")
    sim.drain()
    for i in range(k):
        sim.mh(i).move_to(f"mss-{(i + 2) % m}")
    sim.drain()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R2"),
        "searches": delta.total(Category.SEARCH, "R2"),
        "served": resource.access_count,
        "requester_energy": [
            delta.energy(f"mh-{i}") for i in range(k)
        ],
    }


def test_e5_r2_traversal_cost(benchmark):
    m = 8
    ks = (0, 2, 5, 8)
    results = {k: run_r2(m, k) for k in ks[:-1]}
    results[ks[-1]] = benchmark(run_r2, m, ks[-1])

    rows = []
    for k in ks:
        r = results[k]
        predicted = formulas.r2_traversal_cost(k, m, COSTS)
        rows.append((k, r["served"], r["cost"], predicted,
                     r["searches"]))
    print_table(
        f"E5: R2 traversal cost vs K, M={m}",
        ["K", "served", "measured", "predicted", "searches"],
        rows,
    )
    for k in ks:
        r = results[k]
        assert r["served"] == k
        assert r["cost"] == formulas.r2_traversal_cost(k, m, COSTS)
        # One search per satisfied request -- the O(K) overhead.
        assert r["searches"] == k
        # Requesters pay exactly 3 algorithm energy units (+2 for their
        # scripted move under the mobility scope).
        for energy in r["requester_energy"]:
            assert energy == formulas.r2_energy_per_request() + 2


def test_e5_request_bounds(benchmark):
    n, m = 6, 4
    result = benchmark(
        lambda: (
            formulas.r2_max_requests_per_traversal(n, m),
            formulas.r2_prime_max_requests_per_traversal(n),
        )
    )
    print_table(
        "E5b: per-traversal request bounds",
        ["variant", "bound"],
        [("R2 (plain)", result[0]), ("R2' (counter)", result[1])],
    )
    assert result == (24, 6)
