"""Simulator scaling: events-per-second and cost linearity at size.

Not a paper experiment -- a harness-quality check.  It verifies the
substrate stays usable at N >> M population sizes (the paper's stated
regime) and that per-execution algorithm costs are independent of how
much *other* traffic the system carries (scopes are isolated).
"""

from __future__ import annotations

import random

from repro import Category, CriticalResource, L2Mutex
from repro.analysis import formulas
from repro.mobility import UniformMobility
from repro.workload import MutexWorkload

from conftest import COSTS, make_sim, print_table


def run_loaded_system(n_mss: int, n_mh: int, duration: float = 150.0):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh, seed=3)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.02, rng=random.Random(4))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.01,
                               rng=random.Random(5))
    sim.run(until=duration)
    workload.stop()
    mobility.stop()
    sim.drain()
    resource.assert_no_overlap()
    assert workload.completed == workload.issued
    return {
        "events": sim.scheduler.events_processed,
        "accesses": resource.access_count,
        "moves": sum(sim.mh(i).moves_completed for i in range(n_mh)),
    }


def test_scale_population_sweep(benchmark):
    sizes = [(8, 40), (12, 120)]
    results = {size: run_loaded_system(*size) for size in sizes}
    big = (16, 320)
    results[big] = benchmark(run_loaded_system, *big)
    sizes.append(big)

    rows = [
        (m, n, results[(m, n)]["events"], results[(m, n)]["accesses"],
         results[(m, n)]["moves"])
        for (m, n) in sizes
    ]
    print_table(
        "SCALE: loaded system (L2 + mobility), 150 time units",
        ["M", "N", "events", "CS accesses", "moves"],
        rows,
    )
    for size in sizes:
        assert results[size]["accesses"] > 0
        assert results[size]["moves"] > 0
    # Event volume grows roughly with population, not explosively
    # (ratio between the largest and smallest configs stays within the
    # population ratio times a small constant).
    small_events = results[(8, 40)]["events"]
    big_events = results[big]["events"]
    assert big_events / small_events < (320 / 40) * 3


def test_scale_scopes_are_isolated(benchmark):
    """An L2 execution costs the same whether the system is idle or
    saturated with unrelated traffic -- scoped accounting never
    bleeds."""
    def measure(background: bool):
        sim = make_sim(n_mss=6, n_mh=30, seed=9)
        resource = CriticalResource(sim.scheduler)
        mutex = L2Mutex(sim.network, resource, scope="probe")
        noise = None
        if background:
            noise_resource = CriticalResource(sim.scheduler)
            noise_mutex = L2Mutex(sim.network, noise_resource,
                                  cs_duration=0.2, scope="noise")
            noise = MutexWorkload(sim.network, noise_mutex,
                                  sim.mh_ids[1:], 0.1,
                                  rng=random.Random(10))
            sim.run(until=50.0)
        before = sim.metrics.snapshot()
        mutex.request("mh-0")
        sim.mh(0).move_to(sim.mss_id(3))
        sim.run(until=sim.now + 100.0)
        if noise is not None:
            noise.stop()
        sim.drain()
        delta = sim.metrics.since(before)
        return delta.cost(COSTS, "probe")

    quiet = measure(background=False)
    loud = benchmark(measure, True)
    print_table(
        "SCALE-b: probe execution cost, idle vs saturated system",
        ["system", "probe cost", "predicted"],
        [
            ("idle", quiet, formulas.l2_execution_cost(6, COSTS)),
            ("saturated", loud, formulas.l2_execution_cost(6, COSTS)),
        ],
    )
    assert quiet == formulas.l2_execution_cost(6, COSTS)
    assert loud == quiet
