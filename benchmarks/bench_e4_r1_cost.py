"""E4 -- Section 3.1.2: the cost structure of Algorithm R1.

Paper claims reproduced:
* one traversal of the MH ring costs ``N*(2*C_wireless + C_search)``;
* that cost is independent of K, the number of requests satisfied;
* every MH pays two energy units per traversal (receive + forward),
  and dozing members are interrupted regardless of interest.
"""

from __future__ import annotations

from repro import Category, CriticalResource, R1Mutex
from repro.analysis import formulas

from conftest import COSTS, make_sim, print_table


def run_r1(n: int, k: int, dozers: int = 0):
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=1)
    for i in range(k):
        mutex.want(f"mh-{i}")
    for i in range(dozers):
        sim.mh(n - 1 - i).doze()
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R1"),
        "searches": delta.total(Category.SEARCH, "R1"),
        "energy": delta.energy(),
        "served": resource.access_count,
        "interruptions": sum(
            sim.mh(i).doze_interruptions for i in range(n)
        ),
    }


def test_e4_r1_traversal_cost(benchmark):
    n = 8
    ks = (0, 2, 6)
    results = {k: run_r1(n, k) for k in ks[:-1]}
    results[ks[-1]] = benchmark(run_r1, n, ks[-1])

    predicted = formulas.r1_traversal_cost(n, COSTS)
    rows = [
        (k, results[k]["served"], results[k]["cost"], predicted,
         results[k]["energy"])
        for k in ks
    ]
    print_table(
        f"E4: R1 traversal cost, N={n} (independent of K)",
        ["K", "served", "measured", "predicted", "energy"],
        rows,
    )
    for k in ks:
        r = results[k]
        assert r["served"] == k
        assert r["cost"] == predicted
        assert r["searches"] == formulas.r1_search_count(n)
        assert r["energy"] == formulas.r1_energy_per_traversal(n)
    # Cost does not vary with K at all.
    assert len({results[k]["cost"] for k in ks}) == 1


def test_e4_r1_interrupts_dozing_bystanders(benchmark):
    result = benchmark(run_r1, 8, 1, 3)
    print_table(
        "E4b: doze interruptions in one R1 traversal (3 dozing, K=1)",
        ["served", "interruptions"],
        [(result["served"], result["interruptions"])],
    )
    assert result["served"] == 1
    assert result["interruptions"] == 3
