"""E2 -- Section 3.1.1: the cost structure of Algorithm L2.

Paper claims reproduced:
* one execution costs
  ``3*C_wireless + C_fixed + C_search + 3*(M-1)*C_fixed``
  (the accounting assumes the requester moved before its grant);
* exactly 3 wireless messages and exactly 1 search per execution;
* the requester spends 3 energy units; every other MH spends none;
* the cost is constant in N.
"""

from __future__ import annotations

from repro import Category, CriticalResource, L2Mutex
from repro.analysis import formulas

from conftest import COSTS, make_sim, print_table


def run_l2(n_mss: int, n_mh: int):
    sim = make_sim(n_mss=n_mss, n_mh=n_mh)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    before = sim.metrics.snapshot()
    mutex.request("mh-0")
    sim.mh(0).move_to(sim.mss_id(2))  # the paper's nomadic requester
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "m": n_mss,
        "n": n_mh,
        "cost": delta.cost(COSTS, "L2"),
        "wireless": delta.total(Category.WIRELESS, "L2"),
        "searches": delta.total(Category.SEARCH, "L2"),
        "fixed": delta.total(Category.FIXED, "L2"),
        "energy_requester": delta.energy("mh-0"),
        "energy_others": sum(
            delta.energy(mh) for mh in sim.mh_ids[1:]
        ),
        "accesses": resource.access_count,
    }


def test_e2_l2_execution_cost(benchmark):
    configs = [(4, 8), (8, 16), (16, 64)]
    results = {cfg: run_l2(*cfg) for cfg in configs[:-1]}
    results[configs[-1]] = benchmark(run_l2, *configs[-1])

    rows = []
    for m, n in configs:
        r = results[(m, n)]
        predicted = formulas.l2_execution_cost(m, COSTS)
        rows.append((
            m, n, r["cost"], predicted, r["wireless"], r["searches"],
            r["energy_requester"],
        ))
    print_table(
        "E2: L2 cost per execution vs M (constant in N)",
        ["M", "N", "measured", "predicted", "wireless", "searches",
         "req.energy"],
        rows,
    )
    for m, n in configs:
        r = results[(m, n)]
        assert r["accesses"] == 1
        assert r["cost"] == formulas.l2_execution_cost(m, COSTS)
        assert r["wireless"] == formulas.l2_wireless_message_count()
        assert r["searches"] == formulas.l2_search_count()
        assert r["fixed"] == formulas.l2_fixed_message_count(m)
        # mh-0's delta includes only the 3 L2 messages; the mobility
        # leave/join wireless are scoped separately but still cost the
        # battery, so compare the L2-scope prediction against scoped
        # counts and the requester total against 3 (+2 for the move).
        assert r["energy_requester"] == \
            formulas.l2_energy_per_request() + 2
        assert r["energy_others"] == 0
    # Constant in N: same M with very different N gives the same cost.
    extra = run_l2(4, 64)
    assert extra["cost"] == results[(4, 8)]["cost"]
