"""A5 -- prices the ring re-establishment Section 3.1.2 says R1 requires.

Section 3.1.2: "Algorithm R1 is vulnerable to disconnection of any MH
and requires the logical ring to be re-established amongst the
remaining MHs when one or more MHs disconnect.  However, with R2,
disconnection of a MH that has not submitted a request ... does not
affect the rest of the system at all."

The paper never prices the re-establishment; this ablation does.  One
repair notifies every survivor of the new ring (N-1 searched
deliveries) and re-routes the token -- versus R2's one returned token
(a single fixed message) for a disconnected *requester* and exactly
zero cost for a disconnected bystander.
"""

from __future__ import annotations

from repro import Category, CriticalResource, R1Mutex, R2Mutex

from conftest import COSTS, make_sim, print_table


def run_r1_with_repairs(n: int, disconnects: int):
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                    max_traversals=1, auto_repair=True)
    for i in range(disconnects):
        sim.mh(1 + i).disconnect()
    sim.drain()
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R1"),
        "searches": delta.total(Category.SEARCH, "R1"),
        "repairs": mutex.repairs,
        "finished": mutex.finished,
    }


def run_r2_with_disconnects(n: int, disconnects: int):
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=1)
    for i in range(disconnects):
        sim.mh(1 + i).disconnect()
    sim.drain()
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R2"),
        "searches": delta.total(Category.SEARCH, "R2"),
        "finished": mutex.finished,
    }


def test_a5_repair_cost_vs_r2(benchmark):
    n = 8
    counts = (0, 1, 3)
    r1_results = {d: run_r1_with_repairs(n, d) for d in counts[:-1]}
    r1_results[counts[-1]] = benchmark(
        run_r1_with_repairs, n, counts[-1]
    )
    r2_results = {d: run_r2_with_disconnects(n, d) for d in counts}

    rows = []
    for d in counts:
        rows.append((
            d,
            r1_results[d]["cost"],
            r1_results[d]["repairs"],
            r2_results[d]["cost"],
        ))
    print_table(
        f"A5: traversal cost with disconnected bystanders, N=M={n}",
        ["disconnected", "R1+repair", "repairs", "R2"],
        rows,
    )
    baseline_r1 = r1_results[0]["cost"]
    baseline_r2 = r2_results[0]["cost"]
    for d in counts:
        assert r1_results[d]["finished"]
        assert r2_results[d]["finished"]
        assert r1_results[d]["repairs"] == d
        # Bystander disconnections cost R2 exactly nothing...
        assert r2_results[d]["cost"] == baseline_r2
        # ...while each R1 repair costs extra (notifications + token
        # re-route), on top of a now-shorter traversal.
        if d > 0:
            assert r1_results[d]["cost"] > baseline_r1 - d * (
                2 * COSTS.c_wireless + COSTS.c_search
            )
            assert r1_results[d]["searches"] > n - d
