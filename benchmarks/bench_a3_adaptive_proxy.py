"""A3 -- prices Section 5's ask for mobility-adaptive proxy associations.

The paper ends Section 5 asking for "less static solutions in which
the association between the MHs and proxies change, depending on the
mobility of hosts".  :class:`AdaptiveProxyPolicy` demotes a MH to the
local association when moves pile up without deliveries and promotes
it back when deliveries dominate.  This ablation runs the E11 workload
under all three policies and checks that the adaptive policy tracks
the better static policy at both ends of the mobility spectrum
(within a tolerance -- it pays a little to learn each host's regime).
"""

from __future__ import annotations

import random

from repro.mobility import UniformMobility
from repro.proxy import (
    AdaptiveProxyPolicy,
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxiedMessenger,
    ProxyManager,
)
from repro.sim import PoissonProcess

from conftest import COSTS, make_sim, print_table

N_MSS = 10
N_MH = 10
MSG_RATE = 0.05
DURATION = 1500.0


def run(policy_name: str, move_rate: float, seed: int = 5):
    sim = make_sim(n_mss=N_MSS, n_mh=N_MH, seed=seed)
    policy = {
        "fixed": FixedProxyPolicy,
        "local": LocalProxyPolicy,
        "adaptive": AdaptiveProxyPolicy,
    }[policy_name]()
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    messenger = ProxiedMessenger(manager)
    rng = random.Random(seed + 1)
    sent = [0]

    def send_one() -> None:
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            sent[0] += 1
            messenger.send(src, dst, ("letter", sent[0]))

    traffic = PoissonProcess(sim.scheduler, MSG_RATE, send_one,
                             rng=random.Random(seed + 2))
    mobility = None
    if move_rate > 0:
        mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                                   rng=random.Random(seed + 3))
    sim.run(until=DURATION)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()
    assert len(messenger.delivered) == sent[0]
    return {
        "eff": sim.metrics.cost(COSTS, "proxy") / max(sent[0], 1),
        "demotions": getattr(policy, "demotions", 0),
        "promotions": getattr(policy, "promotions", 0),
    }


def test_a3_adaptive_tracks_the_better_static_policy(benchmark):
    move_rates = (0.002, 0.3)
    table = {}
    for rate in move_rates:
        for name in ("fixed", "local", "adaptive"):
            if rate == move_rates[-1] and name == "adaptive":
                table[(rate, name)] = benchmark(run, name, rate)
            else:
                table[(rate, name)] = run(name, rate)

    rows = []
    for rate in move_rates:
        fixed = table[(rate, "fixed")]["eff"]
        local = table[(rate, "local")]["eff"]
        adaptive = table[(rate, "adaptive")]["eff"]
        rows.append((
            f"{rate:g}", fixed, local, adaptive,
            table[(rate, "adaptive")]["demotions"],
            table[(rate, "adaptive")]["promotions"],
        ))
    print_table(
        "A3: cost per letter -- adaptive vs static proxy scopes",
        ["move rate", "fixed", "local", "adaptive", "demotions",
         "promotions"],
        rows,
    )
    for rate in move_rates:
        fixed = table[(rate, "fixed")]["eff"]
        local = table[(rate, "local")]["eff"]
        adaptive = table[(rate, "adaptive")]["eff"]
        best = min(fixed, local)
        worst = max(fixed, local)
        # Adaptive never degenerates to the worse static policy and
        # stays within 40% of the better one.
        assert adaptive < worst
        assert adaptive <= best * 1.4
    # In the high-mobility regime the policy actually demoted hosts.
    assert table[(move_rates[-1], "adaptive")]["demotions"] > 0
