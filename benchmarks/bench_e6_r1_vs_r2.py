"""E6 -- Section 3.1.2 "Comparison of algorithms R1 and R2".

Paper claims reproduced:
* R1's search overhead is proportional to N and independent of K;
  R2's is proportional to K;
* for sparse requests R2 is cheaper, and the crossover K matches the
  analytic threshold
  ``K* = (N*(2*C_w + C_s) - M*C_f) / (3*C_w + C_f + C_s)``;
* battery: R1 drains every MH twice per traversal; R2 drains only the
  requesters (3 units each);
* doze: R1 interrupts dozing bystanders; R2 never does.
"""

from __future__ import annotations

from repro import Category, CriticalResource, R1Mutex, R2Mutex
from repro.analysis import comparisons, formulas

from conftest import COSTS, make_sim, print_table


def run_r1(n: int, k: int):
    sim = make_sim(n_mss=n, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=1)
    for i in range(k):
        mutex.want(f"mh-{i}")
    sim.mh(n - 1).doze()
    before = sim.metrics.snapshot()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R1"),
        "searches": delta.total(Category.SEARCH, "R1"),
        "bystander_energy": delta.energy(f"mh-{n - 1}"),
        "interruptions": sim.mh(n - 1).doze_interruptions,
        "served": resource.access_count,
    }


def run_r2(n: int, m: int, k: int):
    sim = make_sim(n_mss=m, n_mh=n)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=1)
    # Snapshot before the requests: the per-request cost in the
    # formula includes the request uplink (scoped traffic only, so the
    # scripted moves below do not pollute the measurement).
    before = sim.metrics.snapshot()
    for i in range(k):
        mutex.request(f"mh-{i}")
    sim.drain()
    for i in range(k):
        sim.mh(i).move_to(f"mss-{(i + 2) % m}")
    sim.drain()
    sim.mh(n - 1).doze()
    mutex.start()
    sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost": delta.cost(COSTS, "R2"),
        "searches": delta.total(Category.SEARCH, "R2"),
        "bystander_energy": delta.energy(f"mh-{n - 1}"),
        "interruptions": sim.mh(n - 1).doze_interruptions,
        "served": resource.access_count,
    }


def test_e6_r1_vs_r2_crossover(benchmark):
    n, m = 10, 10
    k_star = comparisons.r1_r2_crossover_k(n, m, COSTS)
    ks = (0, 2, 5, 9)
    r1_results = {k: run_r1(n, k) for k in ks}
    r2_results = {k: run_r2(n, m, k) for k in ks[:-1]}
    r2_results[ks[-1]] = benchmark(run_r2, n, m, ks[-1])

    rows = []
    for k in ks:
        rows.append((
            k,
            r1_results[k]["cost"],
            r2_results[k]["cost"],
            "R2" if r2_results[k]["cost"] < r1_results[k]["cost"]
            else "R1",
            "R2" if k < k_star else "R1",
        ))
    print_table(
        f"E6: R1 vs R2, N=M={n}, analytic crossover K*={k_star:.1f}",
        ["K", "R1 cost", "R2 cost", "winner", "predicted"],
        rows,
    )
    for k in ks:
        measured_winner = (
            "R2" if r2_results[k]["cost"] < r1_results[k]["cost"]
            else "R1"
        )
        predicted_winner = "R2" if k < k_star else "R1"
        assert measured_winner == predicted_winner
        # Search overhead: N for R1 (any K), K for R2.
        assert r1_results[k]["searches"] == n
        assert r2_results[k]["searches"] == k
        # Doze and battery at the bystander mh-9 (never requests).
        assert r1_results[k]["bystander_energy"] == 2
        assert r1_results[k]["interruptions"] >= 1
        assert r2_results[k]["bystander_energy"] == 0
        assert r2_results[k]["interruptions"] == 0
