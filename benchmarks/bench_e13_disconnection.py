"""E13 -- disconnection and doze handling across the four algorithms.

Paper claims reproduced:
* L1 "does not provide for the disconnection of any MH": one detached
  participant blocks every later execution;
* L2 is unaffected by a bystander's disconnection, drops the request
  of a requester that disconnected before its grant (proxy releases on
  its behalf), and completes a disconnected holder's release as soon
  as it reconnects;
* R1 stalls the moment the token is addressed to a disconnected
  member; R2 skips the disconnected requester (token returned by the
  disconnect-cell MSS) and serves everyone else;
* doze mode: R1 interrupts every dozing member per traversal, R2 only
  wakes a MH to satisfy its own prior request.
"""

from __future__ import annotations

from repro import (
    CriticalResource,
    L1Mutex,
    L2Mutex,
    R1Mutex,
    R2Mutex,
)

from conftest import make_sim, print_table


def run_l1_with_disconnect():
    sim = make_sim(n_mss=5, n_mh=5)
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(sim.network, sim.mh_ids, resource)
    sim.mh(4).disconnect()
    sim.drain()
    mutex.request("mh-0")
    sim.run(until=400.0)
    return {"accesses": resource.access_count,
            "pending": len(mutex.node("mh-0").pending_tags())}


def run_l2_with_disconnects():
    sim = make_sim(n_mss=5, n_mh=5)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=2.0)
    # Bystander disconnects; requester mh-0 disconnects pre-grant;
    # mh-1 proceeds normally.
    sim.mh(4).disconnect()
    sim.drain()
    mutex.request("mh-0")
    mutex.request("mh-1")
    sim.mh(0).disconnect()
    sim.drain()
    served = [mh for (_, mh) in mutex.completed]
    aborted = [mh for (_, mh) in mutex.aborted]
    # Holder disconnects mid-region, reconnects later.
    mutex.request("mh-2")
    while resource.holder != "mh-2":
        sim.scheduler.step()
    sim.mh(2).disconnect()
    sim.run(until=sim.now + 50.0)
    blocked = len(mutex.completed) == len(served)
    sim.mh(2).reconnect("mss-3")
    sim.drain()
    return {
        "served": served,
        "aborted": aborted,
        "holder_release_blocked_until_reconnect": blocked,
        "final_completed": [mh for (_, mh) in mutex.completed],
        "violations": resource.violations,
    }


def run_r1_with_disconnect():
    sim = make_sim(n_mss=5, n_mh=5)
    resource = CriticalResource(sim.scheduler)
    mutex = R1Mutex(sim.network, sim.mh_ids, resource, max_traversals=2)
    sim.mh(2).disconnect()
    sim.drain()
    mutex.want("mh-3")
    mutex.start()
    sim.run(until=400.0)
    return {
        "stalled_on": mutex.stalled_on,
        "accesses": resource.access_count,
        "finished": mutex.finished,
    }


def run_r2_with_disconnect():
    sim = make_sim(n_mss=5, n_mh=5)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, max_traversals=2)
    mutex.request("mh-1")
    mutex.request("mh-3")
    sim.drain()
    sim.mh(1).disconnect()
    sim.drain()
    mutex.start()
    sim.drain()
    return {
        "skipped": mutex.skipped_disconnected,
        "served": resource.holders_in_order(),
        "finished": mutex.finished,
    }


def test_e13_disconnection_handling(benchmark):
    l1 = run_l1_with_disconnect()
    l2 = run_l2_with_disconnects()
    r1 = run_r1_with_disconnect()
    r2 = benchmark(run_r2_with_disconnect)

    print_table(
        "E13: behaviour with a disconnected MH",
        ["algorithm", "outcome"],
        [
            ("L1", f"blocked: 0 accesses, request still pending "
                   f"({l1['pending']})"),
            ("L2", f"served {l2['served']}, aborted {l2['aborted']}, "
                   f"holder release waited for reconnect: "
                   f"{l2['holder_release_blocked_until_reconnect']}"),
            ("R1", f"stalled on {r1['stalled_on']}, "
                   f"{r1['accesses']} accesses, finished: "
                   f"{r1['finished']}"),
            ("R2", f"skipped {r2['skipped']}, served {r2['served']}, "
                   f"finished: {r2['finished']}"),
        ],
    )
    # L1: total loss of progress.
    assert l1["accesses"] == 0
    assert l1["pending"] == 1
    # L2: the connected requester was served, the disconnected one
    # aborted, and the disconnected holder's release waited for its
    # reconnect; safety held throughout.
    assert l2["served"] == ["mh-1"]
    assert l2["aborted"] == ["mh-0"]
    assert l2["holder_release_blocked_until_reconnect"]
    assert "mh-2" in l2["final_completed"]
    assert l2["violations"] == 0
    # R1: the ring stalls; the pending requester behind the hole never
    # gets the token.
    assert r1["stalled_on"] == "mh-2"
    assert r1["accesses"] == 0
    assert not r1["finished"]
    # R2: the disconnected requester is skipped, the other served, and
    # the ring completes its traversals.
    assert r2["skipped"] == ["mh-1"]
    assert r2["served"] == ["mh-3"]
    assert r2["finished"]


def test_e13_doze_interruptions(benchmark):
    def run():
        sim = make_sim(n_mss=6, n_mh=6)
        resource = CriticalResource(sim.scheduler)
        r1 = R1Mutex(sim.network, sim.mh_ids, resource,
                     max_traversals=2, scope="R1")
        for i in range(6):
            sim.mh(i).doze()
        r1.start()
        sim.drain()
        r1_interruptions = sum(
            sim.mh(i).doze_interruptions for i in range(6)
        )

        sim2 = make_sim(n_mss=6, n_mh=6)
        resource2 = CriticalResource(sim2.scheduler)
        r2 = R2Mutex(sim2.network, resource2, max_traversals=2)
        r2.request("mh-0")
        sim2.drain()
        for i in range(6):
            sim2.mh(i).doze()
        r2.start()
        sim2.drain()
        r2_interruptions = sum(
            sim2.mh(i).doze_interruptions for i in range(6)
        )
        return r1_interruptions, r2_interruptions

    r1_ints, r2_ints = benchmark(run)
    print_table(
        "E13b: doze interruptions over 2 traversals (all 6 MHs dozing)",
        ["algorithm", "interruptions"],
        [("R1", r1_ints), ("R2 (one requester)", r2_ints)],
    )
    # R1 interrupts every member every traversal; R2 only the requester.
    assert r1_ints == 12
    assert r2_ints == 1
