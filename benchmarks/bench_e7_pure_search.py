"""E7 -- Section 4.1: the pure search strategy.

Paper claims reproduced:
* one group message costs ``(|G|-1)*(2*C_wireless + C_search)``;
* the effective cost is independent of member mobility (MOB);
* no state is maintained anywhere: moves generate zero strategy
  traffic.
"""

from __future__ import annotations

from repro import Category
from repro.analysis import formulas
from repro.groups import PureSearchGroup

from conftest import COSTS, make_sim, print_table


def run_pure_search(g: int, moves_per_member: int):
    sim = make_sim(n_mss=g + 2, n_mh=g)
    group = PureSearchGroup(sim.network, sim.mh_ids)
    # Interleave rotations (every member shifts one cell, keeping all
    # members in distinct cells so every copy genuinely searches) with
    # group messages.
    messages = 4
    offset = 0
    before = sim.metrics.snapshot()
    for round_index in range(messages):
        for _ in range(moves_per_member // messages):
            offset += 1
            for mh_index in range(g):
                target = (mh_index + offset) % sim.n_mss
                sim.mh(mh_index).move_to(f"mss-{target}")
            sim.drain()
        group.send("mh-0", ("msg", round_index))
        sim.drain()
    delta = sim.metrics.since(before)
    return {
        "cost_per_msg": delta.cost(COSTS, group.scope) / messages,
        "searches": delta.total(Category.SEARCH, group.scope),
        "mob": group.stats.moves,
        "msg": group.stats.messages,
        "deliveries": group.stats.deliveries,
    }


def test_e7_pure_search_cost_mobility_independent(benchmark):
    g = 5
    mobilities = (0, 4)
    results = {mob: run_pure_search(g, mob) for mob in mobilities[:-1]}
    results[mobilities[-1]] = benchmark(
        run_pure_search, g, mobilities[-1]
    )

    predicted = formulas.pure_search_message_cost(g, COSTS)
    rows = [
        (
            results[mob]["mob"],
            results[mob]["msg"],
            results[mob]["cost_per_msg"],
            predicted,
        )
        for mob in mobilities
    ]
    print_table(
        f"E7: pure search effective cost per message, |G|={g}",
        ["MOB", "MSG", "measured/msg", "predicted"],
        rows,
    )
    for mob in mobilities:
        r = results[mob]
        assert r["cost_per_msg"] == predicted
        # Every message reached all other members despite the moves.
        assert r["deliveries"] == r["msg"] * (g - 1)
        # One search per non-sender member per message.
        assert r["searches"] == r["msg"] * (g - 1)
    # Mobility independence: identical effective cost at MOB=0 and
    # MOB=high.
    assert results[0]["cost_per_msg"] == results[4]["cost_per_msg"]
