#!/usr/bin/env python3
"""Run the perf harness from a shell: measure, record, compare, gate.

Thin wrapper over :mod:`repro.perf` (docs: ``docs/performance.md``).

    # full suite, write the trajectory record, diff against the last one
    PYTHONPATH=src python tools/perf_harness.py --out BENCH_5.json \
        --baseline auto

    # the CI regression gate (exit 1 on >30% normalized regression)
    PYTHONPATH=src python tools/perf_harness.py --smoke --repeats 3 \
        --baseline BENCH_4.json --check --max-regression 0.30 \
        --out bench-ci.json

    PYTHONPATH=src python tools/perf_harness.py --list
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "src"),
)

from repro.errors import ConfigurationError  # noqa: E402
from repro.perf import (  # noqa: E402
    SCENARIOS,
    check_regressions,
    compare,
    delta_table,
    find_previous_bench,
    load_bench,
    run_suite,
    scenario_names,
    write_bench,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perf_harness",
        description="Measure the simulation substrate's events/sec on "
                    "curated scenarios and gate regressions.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--scenarios", default=None, metavar="A,B,...",
                        help="comma-separated scenario names "
                             "(default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the cheap CI-gate scenarios")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per scenario, best-of (default 3)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the BENCH json record to PATH")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="BENCH json to diff against; 'auto' picks "
                             "the highest-numbered BENCH_<n>.json in "
                             "the repo root")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any scenario regresses beyond "
                             "--max-regression vs --baseline")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="tolerated fractional slowdown "
                             "(default 0.30)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw events/sec instead of "
                             "calibration-normalized scores")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in scenario_names():
            scenario = SCENARIOS[name]
            tag = " [smoke]" if scenario.smoke else ""
            print(f"{name:<18} {scenario.description}{tag}")
        return 0

    if args.scenarios and args.smoke:
        print("error: --scenarios and --smoke are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.smoke:
        names = scenario_names(smoke_only=True)
    elif args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    else:
        names = scenario_names()

    baseline = None
    baseline_path = args.baseline
    if baseline_path == "auto":
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline_path = find_previous_bench(root)
        if baseline_path is None:
            print("note: no BENCH_<n>.json found; running without a "
                  "baseline")
    if baseline_path:
        baseline = load_bench(baseline_path)

    try:
        record = run_suite(names, repeats=args.repeats, progress=print)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if baseline is not None:
        deltas = compare(record, baseline)
        print()
        print(f"vs baseline {baseline_path}:")
        print(delta_table(deltas))
        record["baseline"] = {
            "path": os.path.basename(baseline_path),
            "calibration_ops_per_sec":
                baseline.get("calibration_ops_per_sec"),
            "scenarios": baseline["scenarios"],
            "speedup": {
                d.name: {
                    "raw_ratio": round(d.raw_ratio, 4),
                    "normalized_ratio": (
                        round(d.normalized_ratio, 4)
                        if d.normalized_ratio is not None else None
                    ),
                }
                for d in deltas
            },
        }

    if args.out:
        write_bench(record, args.out)
        print(f"\nwrote {args.out}")

    if args.check:
        if baseline is None:
            print("error: --check needs --baseline", file=sys.stderr)
            return 2
        failures = check_regressions(
            deltas,
            max_regression=args.max_regression,
            normalized=not args.no_normalize,
        )
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nperf gate ok (tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
