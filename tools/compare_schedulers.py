#!/usr/bin/env python3
"""CI gate: the calendar scheduler must match the heap byte-for-byte
and must not slow the default heap path down.

Two checks (docs/performance.md, "Choosing a scheduler"):

1. **Byte identity** -- every canonical trace scenario, and the whole
   certified chaos pack at one sweep seed, produce identical digests
   under ``scheduler="heap"`` and ``scheduler="calendar"`` (full event
   streams for the trace scenarios, full reports for the pack).
2. **Perf parity** -- the smoke workloads run under both schedulers,
   interleaved in one process (best-of-``--repeats`` each) so machine
   noise hits both sides equally; the run fails when the heap path is
   more than ``--max-regression`` slower than the calendar path, which
   is the symptom of the shared run loop losing a heap fast path.

    PYTHONPATH=src python tools/compare_schedulers.py --repeats 3
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "src"),
)

from repro.facade import Simulation  # noqa: E402
from repro.perf.scenarios import loaded_system, scheduler_density  # noqa: E402

#: workloads timed under both schedulers (name, kwargs for the driver).
PERF_PAIRS = [
    ("smoke_mutex", lambda kind: loaded_system(
        6, 40, 2000.0, scheduler=kind)),
    ("sched_density", lambda kind: scheduler_density(
        20_000, 300_000, kind)),
]


def _event_stream_digest(events) -> str:
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(
            [ev.id, ev.parent_id, ev.time, ev.etype, ev.scope,
             ev.category, ev.src, ev.dst, ev.kind,
             sorted(ev.detail.items())],
            sort_keys=True, default=repr).encode())
    return h.hexdigest()


def check_canonical_identity() -> list:
    """Digest mismatches across the canonical trace scenarios."""
    import repro.trace.scenarios as trace_scenarios

    mismatches = []
    original = trace_scenarios.Simulation
    for name in sorted(trace_scenarios.SCENARIOS):
        digests = {}
        for kind in ("heap", "calendar"):
            trace_scenarios.Simulation = (
                lambda *a, **kw: original(*a, scheduler=kind, **kw)
            )
            try:
                run = trace_scenarios.run_scenario(name)
            finally:
                trace_scenarios.Simulation = original
            digests[kind] = (
                len(run.events),
                run.sim.now,
                _event_stream_digest(run.events),
            )
        if digests["heap"] != digests["calendar"]:
            mismatches.append((name, digests))
    return mismatches


def check_pack_identity(seed: int) -> list:
    """Report-digest mismatches across the certified chaos pack."""
    import repro.scenario.runner as runner_mod
    from repro.scenario import builtin_registry, run_scenario

    def report_digest(spec):
        report = dict(run_scenario(spec, seed=seed).report)
        report.pop("wall_time_s")
        return hashlib.sha256(json.dumps(
            report, sort_keys=True, default=repr).encode()).hexdigest()

    mismatches = []
    registry = builtin_registry()
    original = runner_mod.Simulation
    for name in sorted(registry.names()):
        baseline = report_digest(registry.get(name))
        runner_mod.Simulation = (
            lambda *a, **kw: original(*a, scheduler="calendar", **kw)
        )
        try:
            other = report_digest(registry.get(name))
        finally:
            runner_mod.Simulation = original
        if other != baseline:
            mismatches.append(name)
    return mismatches


def run_perf_pairs(repeats: int):
    """Best-of-``repeats`` interleaved timings, heap vs calendar."""
    results = []
    for name, driver in PERF_PAIRS:
        best = {"heap": float("inf"), "calendar": float("inf")}
        events = 0
        for _ in range(repeats):
            for kind in ("heap", "calendar"):
                start = time.perf_counter()
                events = driver(kind)
                elapsed = time.perf_counter() - start
                if elapsed < best[kind]:
                    best[kind] = elapsed
        results.append((name, events, best))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_schedulers",
        description="byte-identity and perf parity of heap vs "
                    "calendar scheduling",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved repeats per workload "
                             "(default 3)")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="tolerated fractional slowdown of the "
                             "heap path vs the calendar path "
                             "(default 0.05)")
    parser.add_argument("--pack-seed", type=int, default=7,
                        help="chaos-pack sweep seed for the identity "
                             "check (default 7)")
    parser.add_argument("--skip-perf", action="store_true",
                        help="only run the byte-identity checks")
    args = parser.parse_args(argv)

    failed = False

    mismatches = check_canonical_identity()
    print(f"canonical scenarios: "
          f"{'OK' if not mismatches else 'DIGEST MISMATCH'}")
    for name, digests in mismatches:
        failed = True
        print(f"  {name}: heap {digests['heap']} != "
              f"calendar {digests['calendar']}")

    pack_mismatches = check_pack_identity(args.pack_seed)
    print(f"chaos pack (seed {args.pack_seed}): "
          f"{'OK' if not pack_mismatches else 'DIGEST MISMATCH'}")
    for name in pack_mismatches:
        failed = True
        print(f"  {name}: report diverged under the calendar scheduler")

    if not args.skip_perf:
        header = (f"{'workload':<16}{'events':>9}{'heap ev/s':>12}"
                  f"{'calendar ev/s':>15}{'heap/cal':>10}")
        print()
        print(header)
        print("-" * len(header))
        floor = 1.0 - args.max_regression
        for name, events, best in run_perf_pairs(args.repeats):
            heap_eps = events / best["heap"]
            cal_eps = events / best["calendar"]
            ratio = heap_eps / cal_eps
            flag = ""
            if ratio < floor:
                failed = True
                flag = f"  HEAP REGRESSION (floor {floor:.2f})"
            print(f"{name:<16}{events:>9}{heap_eps:>12.0f}"
                  f"{cal_eps:>15.0f}{ratio:>10.2f}{flag}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
