#!/usr/bin/env python3
"""Execute every example in ``docs/scaling.md``.

The scaling guide promises its snippets are copy-pasteable.  This
script extracts each fenced block and runs it: ``python -m repro ...``
lines from shell fences go through :func:`repro.cli.main` in-process,
and ``python`` fences are executed as scripts.  Exits 1 on the first
failing example.  The CI ``docs`` job runs this, so the guide cannot
drift from the code it documents.
"""

from __future__ import annotations

import os
import re
import shlex
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GUIDE = os.path.join(REPO, "docs", "scaling.md")

_FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.cli import main as cli_main

    with open(GUIDE, encoding="utf-8") as fh:
        text = fh.read()
    ran = 0
    for lang, block in _FENCE_RE.findall(text):
        if lang == "python":
            print(f"[scaling.md] python block ({len(block)} chars)")
            exec(compile(block, GUIDE, "exec"), {"__name__": "example"})
            ran += 1
            continue
        for line in block.replace("\\\n", " ").splitlines():
            line = line.strip()
            if not line.startswith(("python -m repro", "PYTHONPATH=src "
                                    "python -m repro")):
                continue
            argv = shlex.split(line)
            argv = argv[argv.index("repro") + 1:]
            print(f"[scaling.md] repro {' '.join(argv)}")
            code = cli_main(argv, emit=lambda s: None)
            if code != 0:
                print(f"example exited {code}: {line}", file=sys.stderr)
                return 1
            ran += 1
    print(f"ran {ran} examples from docs/scaling.md")
    return 0 if ran else 1


if __name__ == "__main__":
    sys.exit(main())
