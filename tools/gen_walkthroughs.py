#!/usr/bin/env python3
"""Regenerate ``docs/walkthroughs/`` from the canonical traced scenarios.

Thin wrapper over :mod:`repro.trace.walkthroughs`: runs every scenario
in :mod:`repro.trace.scenarios` with tracing enabled and renders one
Markdown page per walkthrough (Mermaid sequence diagram, step-by-step
event table with cost annotations, priced cost summary) plus an index.

The pages are checked in; CI re-runs this script and fails on any diff,
so the scenarios and renderer must stay deterministic.

    PYTHONPATH=src python tools/gen_walkthroughs.py            # write
    PYTHONPATH=src python tools/gen_walkthroughs.py --check    # CI mode
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.trace.walkthroughs import render_all, write_all  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "walkthroughs",
)


def check(out_dir: str) -> int:
    """Exit nonzero if any checked-in page differs from a fresh render."""
    stale = []
    for filename, content in sorted(render_all().items()):
        path = os.path.join(out_dir, filename)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                on_disk = fh.read()
        except OSError:
            on_disk = None
        if on_disk != content:
            stale.append(filename)
    if stale:
        print("stale walkthrough pages (regenerate with "
              "`PYTHONPATH=src python tools/gen_walkthroughs.py`):")
        for filename in stale:
            print(f"  {filename}")
        return 1
    print(f"docs/walkthroughs up to date ({len(render_all())} pages)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output directory (default: docs/walkthroughs)")
    parser.add_argument("--check", action="store_true",
                        help="verify the checked-in pages match a fresh "
                             "render instead of writing")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.out)
    for path in write_all(args.out):
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
