#!/usr/bin/env python3
"""Seed-sweep fuzzing harness for the library's end-to-end invariants.

Runs hundreds of randomized churn scenarios (random latencies, moves,
disconnections, concurrent workloads) and checks the invariants that
must hold under *any* interleaving:

* mutual exclusion safety and completion (L2, R2);
* exactly-once in-order delivery (multicast, ordered group);
* per-(message, recipient) delivery accounting (all group strategies);
* full delivery of proxied letters under every policy.

This harness found three real distributed races during development
(stale-handoff state forking, coordinator snapshot self-overwrite,
stale move-notice wiping a returned member) -- each now has a
deterministic regression test in ``tests/``.  A bounded version runs in
CI as ``tests/test_fuzz_smoke.py``; run this script directly for deep
sweeps:

    python tools/fuzz_sweep.py --seeds 500
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import (
    CriticalResource,
    L2Mutex,
    NetworkConfig,
    R2Mutex,
    Simulation,
    UniformLatency,
)
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    OrderedGroup,
    PureSearchGroup,
)
from repro.mobility import DisconnectionModel, UniformMobility
from repro.multicast import ExactlyOnceMulticast
from repro.sim import PoissonProcess
from repro.workload import GroupMessagingWorkload, MutexWorkload


def _config() -> NetworkConfig:
    return NetworkConfig(
        fixed_latency=UniformLatency(0.2, 2.5),
        wireless_latency=UniformLatency(0.1, 0.8),
    )


def check_multicast(seed: int) -> str | None:
    """Exactly-once, in-order, buffers drained -- under full churn."""
    g = 2 + seed % 6
    sim = Simulation(n_mss=5, n_mh=g, seed=seed, config=_config(),
                     placement="random")
    feed = ExactlyOnceMulticast(sim.network, sim.mh_ids)
    rng = random.Random(seed + 1)
    sent = [0]

    def send() -> None:
        member = rng.choice(sim.mh_ids)
        if sim.network.mobile_host(member).is_connected:
            sent[0] += 1
            feed.send(member, sent[0])

    traffic = PoissonProcess(sim.scheduler, 0.06, send,
                             rng=random.Random(seed + 2))
    mobility = UniformMobility(sim.network, sim.mh_ids,
                               0.03 + 0.05 * (seed % 3),
                               rng=random.Random(seed + 3))
    churn = DisconnectionModel(sim.network, sim.mh_ids, 0.01,
                               downtime=4.0, rng=random.Random(seed + 4))
    sim.run(until=250.0)
    for stoppable in (traffic, mobility, churn):
        stoppable.stop()
    sim.drain(max_events=3_000_000)
    total = feed.messages_sent
    for member in sim.mh_ids:
        if feed.delivered_seqs(member) != list(range(1, total + 1)):
            return f"multicast member={member}"
    if any(feed.buffer_size(m) for m in sim.mss_ids):
        return "multicast buffers not drained"
    return None


def check_ordered_group(seed: int) -> str | None:
    """Total order + exactly-once for the LV-routed ordered group."""
    g = 2 + seed % 5
    sim = Simulation(n_mss=6, n_mh=g, seed=seed, config=_config(),
                     placement="random")
    group = OrderedGroup(sim.network, sim.mh_ids)
    rng = random.Random(seed + 1)
    sent = [0]

    def send() -> None:
        member = rng.choice(sim.mh_ids)
        if sim.network.mobile_host(member).is_connected:
            sent[0] += 1
            group.send(member, sent[0])

    traffic = PoissonProcess(sim.scheduler, 0.06, send,
                             rng=random.Random(seed + 2))
    mobility = UniformMobility(sim.network, sim.mh_ids,
                               0.02 + 0.04 * (seed % 3),
                               rng=random.Random(seed + 3))
    sim.run(until=250.0)
    traffic.stop()
    mobility.stop()
    sim.drain(max_events=3_000_000)
    total = group.messages_sent
    for member in sim.mh_ids:
        if group.delivered_seqs(member) != list(range(1, total + 1)):
            return f"ordered member={member}"
    return None


def check_group_accounting(seed: int) -> str | None:
    """Exactly-once (delivered | missed) accounting per recipient."""
    g = 2 + seed % 6
    strategy_class = [
        PureSearchGroup, AlwaysInformGroup, LocationViewGroup
    ][seed % 3]
    sim = Simulation(n_mss=6, n_mh=g, seed=seed, config=_config(),
                     placement="random")
    group = strategy_class(sim.network, sim.mh_ids)
    workload = GroupMessagingWorkload(sim.network, group, 0.06,
                                      rng=random.Random(seed + 1))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.05,
                               rng=random.Random(seed + 2))
    churn = DisconnectionModel(sim.network, sim.mh_ids, 0.005,
                               downtime=6.0, rng=random.Random(seed + 3))
    sim.run(until=250.0)
    for stoppable in (workload, mobility, churn):
        stoppable.stop()
    sim.drain(max_events=3_000_000)
    expected = group.stats.expected_recipients
    if group.stats.deliveries + group.stats.missed != expected:
        return f"accounting {strategy_class.__name__}: {group.stats}"
    return None


def check_mutex(seed: int) -> str | None:
    """Safety + completion for L2 and R2 under mobility."""
    sim = Simulation(n_mss=5, n_mh=8, seed=seed, config=_config(),
                     placement="random")
    resource_a = CriticalResource(sim.scheduler)
    l2 = L2Mutex(sim.network, resource_a, cs_duration=0.3, scope="fzl2")
    resource_b = CriticalResource(sim.scheduler)
    r2 = R2Mutex(sim.network, resource_b, cs_duration=0.3, scope="fzr2")
    l2_work = MutexWorkload(sim.network, l2, sim.mh_ids[:4], 0.04,
                            rng=random.Random(seed + 1))
    r2_work = MutexWorkload(sim.network, r2, sim.mh_ids[4:], 0.04,
                            rng=random.Random(seed + 2))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.03,
                               rng=random.Random(seed + 3))
    r2.start()
    sim.run(until=150.0)
    for stoppable in (l2_work, r2_work, mobility):
        stoppable.stop()
    deadline = sim.now + 3000.0
    while r2_work.completed < r2_work.issued and sim.now < deadline:
        sim.run(until=sim.now + 50.0)
    r2.max_traversals = 0
    sim.run(until=sim.now + 300.0)
    sim.drain(max_events=3_000_000)
    resource_a.assert_no_overlap()
    resource_b.assert_no_overlap()
    if l2_work.completed != l2_work.issued:
        return "L2 incomplete"
    if r2_work.completed != r2_work.issued:
        return "R2 incomplete"
    return None


CHECKS = {
    "multicast": check_multicast,
    "ordered": check_ordered_group,
    "groups": check_group_accounting,
    "mutex": check_mutex,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=200,
                        help="seeds per invariant")
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--only", choices=sorted(CHECKS),
                        help="run a single invariant")
    args = parser.parse_args(argv)
    checks = (
        {args.only: CHECKS[args.only]} if args.only else CHECKS
    )
    failures = []
    for name, check in checks.items():
        for seed in range(args.start, args.start + args.seeds):
            try:
                bad = check(seed)
            except Exception as exc:  # noqa: BLE001 - report and go on
                bad = f"exception {type(exc).__name__}: {exc}"
            if bad:
                failures.append(f"{name} seed={seed}: {bad}")
                print("FAIL", failures[-1])
    runs = args.seeds * len(checks)
    print(f"{runs} runs, {len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
