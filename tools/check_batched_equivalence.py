#!/usr/bin/env python3
"""CI gate: batched monitor dispatch is equivalent to per-event.

Runs every certified chaos-pack scenario (and the canonical loaded
system) under ``monitor_mode="event"`` and ``monitor_mode="batched"``
across the certification seeds, and fails if any report field other
than wall time differs -- violations, monitor summaries, health
counters, costs, message totals, final time.  This is the acceptance
gate of the batched observability pipeline (ROADMAP item 3): exact
monitoring off the hot path must not lose or reorder a single event.

    PYTHONPATH=src python tools/check_batched_equivalence.py
    PYTHONPATH=src python tools/check_batched_equivalence.py \
        --seeds 7,19,42 --scenario kitchen_sink
"""

from __future__ import annotations

import argparse
import os
import sys
from time import perf_counter

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "src"),
)

from repro.scenario import builtin_registry, run_scenario  # noqa: E402

DEFAULT_SEEDS = (7, 19, 42)


def scrub(report):
    """Everything must match except measured wall time."""
    report = dict(report)
    report.pop("wall_time_s", None)
    return report


def diff_keys(a, b):
    return sorted(
        k for k in set(a) | set(b) if a.get(k) != b.get(k)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Verify batched == per-event monitor dispatch "
                    "on the certified chaos pack."
    )
    parser.add_argument("--seeds", default=",".join(map(str, DEFAULT_SEEDS)),
                        help="comma-separated seeds (default 7,19,42)")
    parser.add_argument("--scenario", default=None,
                        help="single scenario name (default: whole pack)")
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]

    registry = builtin_registry()
    names = [args.scenario] if args.scenario else sorted(registry.names())
    started = perf_counter()
    checked = 0
    failures = []
    for name in names:
        spec = registry.get(name)
        for seed in seeds:
            event = run_scenario(spec, seed=seed, monitor_mode="event")
            batched = run_scenario(spec, seed=seed,
                                   monitor_mode="batched")
            checked += 1
            report_e = scrub(event.report)
            report_b = scrub(batched.report)
            if report_e != report_b:
                keys = diff_keys(report_e, report_b)
                failures.append(f"{name} seed={seed}: differs in {keys}")
                print(f"FAIL {name} seed={seed}: {keys}")
            elif event.events != batched.events:
                failures.append(
                    f"{name} seed={seed}: event counts differ "
                    f"({event.events} vs {batched.events})"
                )
    elapsed = perf_counter() - started
    print(
        f"batched-equivalence: {checked} runs x2 modes in "
        f"{elapsed:.1f}s, {len(failures)} failures"
    )
    if failures:
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
