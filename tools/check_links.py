#!/usr/bin/env python3
"""Check relative links and anchors in the repository's Markdown docs.

Scans ``README.md`` and every ``docs/**/*.md`` for Markdown links
``[text](target)`` and verifies that:

* relative file targets exist (relative to the linking file);
* intra-repo anchors (``file.md#section`` or ``#section``) match a
  heading in the target file (GitHub-style slugs);
* no link points outside the repository.

External ``http(s)://`` links are listed but not fetched (CI has no
network guarantee).  Exits nonzero on any broken link.

    python tools/check_links.py
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) -- ignores images' leading ! only in that we treat
#: them identically (the file must exist either way).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, "r", encoding="utf-8") as fh:
        content = _CODE_FENCE_RE.sub("", fh.read())
    return {github_slug(m.group(1)) for m in _HEADING_RE.finditer(content)}


def doc_files() -> list:
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs = os.path.join(REPO_ROOT, "docs")
    for dirpath, _, filenames in os.walk(docs):
        for name in sorted(filenames):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return files


def check_file(path: str, errors: list) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        content = _CODE_FENCE_RE.sub("", fh.read())
    rel = os.path.relpath(path, REPO_ROOT)
    checked = 0
    for match in _LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part)
            )
            if not dest.startswith(REPO_ROOT):
                errors.append(f"{rel}: link escapes the repo: {target}")
                continue
            if not os.path.exists(dest):
                errors.append(f"{rel}: broken link: {target}")
                continue
        else:
            dest = path
        if anchor and dest.endswith(".md"):
            if anchor not in anchors_of(dest):
                errors.append(f"{rel}: missing anchor: {target}")
    return checked


def main(argv=None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    errors: list = []
    total = 0
    files = doc_files()
    for path in files:
        total += check_file(path, errors)
    for error in errors:
        print(f"BROKEN  {error}")
    print(f"checked {total} relative links across {len(files)} files: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
