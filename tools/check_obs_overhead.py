#!/usr/bin/env python3
"""CI gate: batched exact monitoring stays cheap in the BENCH record.

Reads a BENCH_<n>.json trajectory record and checks the observability
headline (ROADMAP item 3) on the wall times recorded side by side in
the same session:

* ``smoke_full_stack`` (calendar queue + batched exact monitors) must
  stay within ``--max-ratio`` of ``smoke_calendar`` (same workload,
  monitors off).  The aspirational target is 1.10x; the measured
  pure-Python floor on the reference machine is ~1.2x (about 1 us of
  append+replay per monitored row over a ~9 us/event simulator), so
  the default gate is a calibrated regression ceiling above that
  floor, not the aspiration -- see docs/observability.md for the
  honest accounting.
* ``smoke_full_stack`` must also undercut ``smoke_monitors``
  (per-event exact dispatch, same workload) by ``--max-vs-event`` --
  the batched pipeline has to keep beating the dispatch it replaced
  by a wide margin, whatever the machine.

    PYTHONPATH=src python tools/check_obs_overhead.py BENCH_9.json
    PYTHONPATH=src python tools/check_obs_overhead.py BENCH_9.json \
        --max-ratio 1.35 --max-vs-event 0.80
"""

from __future__ import annotations

import argparse
import json
import sys

FULL = "smoke_full_stack"
OFF = "smoke_calendar"
EVENT = "smoke_monitors"


def wall(record, name):
    try:
        return float(record["scenarios"][name]["wall_time_s"])
    except KeyError:
        raise SystemExit(
            f"obs-overhead: scenario {name!r} missing from the BENCH "
            f"record; re-run the perf harness with the smoke set"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate batched-monitor overhead recorded in a "
                    "BENCH json file."
    )
    parser.add_argument("bench", help="path to BENCH_<n>.json")
    parser.add_argument("--max-ratio", type=float, default=1.35,
                        help="ceiling for full_stack/calendar wall "
                             "time (default 1.35; target 1.10)")
    parser.add_argument("--max-vs-event", type=float, default=0.80,
                        help="ceiling for full_stack/per-event wall "
                             "time (default 0.80)")
    args = parser.parse_args(argv)

    with open(args.bench, encoding="utf-8") as fh:
        record = json.load(fh)

    full = wall(record, FULL)
    off = wall(record, OFF)
    event = wall(record, EVENT)
    ratio = full / off
    vs_event = full / event
    print(f"{FULL}: {full:.3f}s  {OFF}: {off:.3f}s  "
          f"{EVENT}: {event:.3f}s")
    print(f"batched vs monitors-off : {ratio:.3f}x "
          f"(gate {args.max_ratio:.2f}x, target 1.10x)")
    print(f"batched vs per-event    : {vs_event:.3f}x "
          f"(gate {args.max_vs_event:.2f}x)")

    failures = []
    if ratio > args.max_ratio:
        failures.append(
            f"batched monitors cost {ratio:.3f}x monitors-off wall "
            f"time (ceiling {args.max_ratio:.2f}x)"
        )
    if vs_event > args.max_vs_event:
        failures.append(
            f"batched monitors only reach {vs_event:.3f}x of "
            f"per-event wall time (ceiling {args.max_vs_event:.2f}x)"
        )
    if failures:
        for failure in failures:
            print(f"obs-overhead: FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs-overhead: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
