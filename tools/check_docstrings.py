#!/usr/bin/env python3
"""Check that every public module in ``src/repro`` is anchored.

Each module docstring must say *where it comes from*: a paper section
("Section 3"), a ROADMAP item, a citation tag ("[1]"), or at least the
word "paper"/"ICDCS".  That one line is what lets a reader map code to
the source material without spelunking git history — the same promise
the walkthrough docs make, enforced at the module level.

Usage: python tools/check_docstrings.py [--root src/repro]
Exits 1 listing every module that is missing a docstring or an anchor.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys

#: what counts as an anchor to the source material.
ANCHOR_RE = re.compile(
    r"(Section\s*\d|ROADMAP|paper|ICDCS|\[\d+\])", re.IGNORECASE
)

#: modules the perf arc leans on hardest; the walk must find and pass
#: every one of these, so a rename or move cannot silently drop the
#: calendar scheduler or the object pools out of the lint.
REQUIRED_MODULES = (
    os.path.join("pool", "__init__.py"),      # free-list object pools
    os.path.join("sim", "scheduler.py"),      # heap + calendar queue
    os.path.join("monitor", "hub.py"),        # sampled monitor dispatch
    os.path.join("perf", "scenarios.py"),     # BENCH workloads
)


def iter_modules(root: str):
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def check_module(path: str):
    """Return a problem string for ``path``, or None when it passes."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # pragma: no cover - tier-1 would fail
        return f"does not parse: {exc}"
    doc = ast.get_docstring(tree)
    if not doc:
        return "missing module docstring"
    if not ANCHOR_RE.search(doc):
        return ("docstring lacks a source anchor "
                "(Section N / ROADMAP / paper / ICDCS / [n])")
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.join("src", "repro"))
    args = parser.parse_args(argv)
    problems = []
    checked = 0
    seen = set()
    for path in iter_modules(args.root):
        checked += 1
        seen.add(path)
        problem = check_module(path)
        if problem:
            problems.append((path, problem))
    if os.path.normpath(args.root) == os.path.join("src", "repro"):
        for suffix in REQUIRED_MODULES:
            if not any(path.endswith(suffix) for path in seen):
                problems.append((
                    os.path.join(args.root, suffix),
                    "required module not found by the walk",
                ))
    for path, problem in problems:
        print(f"{path}: {problem}")
    print(f"checked {checked} modules: {len(problems)} unanchored")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
